//! The mesh timing and traffic-accounting model.

use crate::topology::{xy_route_into, Link, TileId};
use nsc_sim::error::SimError;
use nsc_sim::fault::{self, FaultSite};
use nsc_sim::metrics::{self, Hist, Metric, Prof};
use nsc_sim::trace::{self, TraceEvent};
use nsc_sim::{resource::BandwidthLedger, Cycle, Histogram, Summary};

/// Classification of NoC messages, matching the paper's Figure 12 breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgClass {
    /// Non-offloaded data accesses and writebacks.
    Data,
    /// Coherence and prefetch control messages.
    Control,
    /// Data and coordination for near-data computing (credits, ranges,
    /// commits, forwarded stream data, offload requests).
    Offloaded,
}

impl MsgClass {
    /// All classes, in display order.
    pub const ALL: [MsgClass; 3] = [MsgClass::Data, MsgClass::Control, MsgClass::Offloaded];

    fn index(self) -> usize {
        match self {
            MsgClass::Data => 0,
            MsgClass::Control => 1,
            MsgClass::Offloaded => 2,
        }
    }

    /// Short lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Data => "data",
            MsgClass::Control => "control",
            MsgClass::Offloaded => "offloaded",
        }
    }
}

/// Static configuration of the mesh.
#[derive(Clone, Debug, PartialEq)]
pub struct MeshConfig {
    /// Tiles per row.
    pub width: u16,
    /// Tiles per column.
    pub height: u16,
    /// Link width in bytes per cycle (256-bit links = 32 B).
    pub link_bytes_per_cycle: u64,
    /// Router pipeline depth in cycles (5-stage in the paper).
    pub router_latency: u64,
    /// Link traversal latency in cycles.
    pub link_latency: u64,
    /// Per-message header/flit overhead in bytes, charged to accounting.
    pub header_bytes: u64,
    /// Whether links model bandwidth contention.
    pub contention: bool,
}

impl MeshConfig {
    /// The paper's Table V configuration: 8x8 mesh, 256-bit 1-cycle links,
    /// 5-stage routers.
    pub fn paper_8x8() -> MeshConfig {
        MeshConfig {
            width: 8,
            height: 8,
            link_bytes_per_cycle: 32,
            router_latency: 5,
            link_latency: 1,
            header_bytes: 8,
            contention: true,
        }
    }

    /// A small 4x4 mesh useful for fast tests.
    pub fn small_4x4() -> MeshConfig {
        MeshConfig {
            width: 4,
            height: 4,
            ..MeshConfig::paper_8x8()
        }
    }

    /// Number of tiles in the mesh.
    pub fn tiles(&self) -> u16 {
        self.width * self.height
    }

    /// Validates the dimensions and link parameters, returning a
    /// [`SimError::Config`] naming the first problem found.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.width == 0 || self.height == 0 {
            return Err(SimError::config(format!(
                "mesh dimensions must be non-zero, got {}x{}",
                self.width, self.height
            )));
        }
        if (self.width as u32) * (self.height as u32) > u16::MAX as u32 {
            return Err(SimError::config(format!(
                "mesh {}x{} exceeds the 16-bit tile id space",
                self.width, self.height
            )));
        }
        if self.link_bytes_per_cycle == 0 {
            return Err(SimError::config(
                "mesh link_bytes_per_cycle must be non-zero",
            ));
        }
        Ok(())
    }
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig::paper_8x8()
    }
}

/// Bucket width (cycles) of the end-to-end latency histogram.
const LATENCY_BUCKET_CYCLES: f64 = 8.0;
/// Bucket count of the end-to-end latency histogram (covers [0, 512)).
const LATENCY_BUCKETS: usize = 64;

/// Accumulated traffic statistics, per message class.
#[derive(Clone, Debug)]
pub struct TrafficStats {
    bytes_hops: [u64; 3],
    bytes: [u64; 3],
    messages: [u64; 3],
    hops: [u64; 3],
    latency: Summary,
    latency_hist: Histogram,
}

impl Default for TrafficStats {
    fn default() -> Self {
        TrafficStats {
            bytes_hops: [0; 3],
            bytes: [0; 3],
            messages: [0; 3],
            hops: [0; 3],
            latency: Summary::new(),
            latency_hist: Histogram::new(LATENCY_BUCKET_CYCLES, LATENCY_BUCKETS),
        }
    }
}

impl TrafficStats {
    /// Bytes × hops for one class — the paper's traffic metric.
    pub fn bytes_hops(&self, class: MsgClass) -> u64 {
        self.bytes_hops[class.index()]
    }

    /// Total bytes × hops across all classes (saturating).
    pub fn total_bytes_hops(&self) -> u64 {
        self.bytes_hops.iter().fold(0u64, |a, &v| a.saturating_add(v))
    }

    /// Total payload+header bytes injected for one class.
    pub fn bytes(&self, class: MsgClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Messages sent for one class.
    pub fn messages(&self, class: MsgClass) -> u64 {
        self.messages[class.index()]
    }

    /// Total messages across classes (saturating).
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().fold(0u64, |a, &v| a.saturating_add(v))
    }

    /// Hops traversed for one class.
    pub fn hops(&self, class: MsgClass) -> u64 {
        self.hops[class.index()]
    }

    /// End-to-end latency summary over all non-local messages.
    pub fn latency(&self) -> &Summary {
        &self.latency
    }

    /// End-to-end latency distribution (8-cycle buckets) for percentile
    /// reporting.
    pub fn latency_hist(&self) -> &Histogram {
        &self.latency_hist
    }

    fn record(&mut self, class: MsgClass, bytes: u64, hops: u64, latency: Cycle) {
        let i = class.index();
        let byte_hops = bytes.saturating_mul(hops);
        self.bytes_hops[i] = self.bytes_hops[i].saturating_add(byte_hops);
        self.bytes[i] = self.bytes[i].saturating_add(bytes);
        self.messages[i] = self.messages[i].saturating_add(1);
        self.hops[i] = self.hops[i].saturating_add(hops);
        self.latency.record(latency.raw() as f64);
        self.latency_hist.record(latency.raw() as f64);
        // Live metrics mirror: per-class message counts, traffic volume,
        // the latency distribution, and profiler attribution of the
        // message's in-network cycles.
        let (msgs, prof) = match class {
            MsgClass::Data => (Metric::NocMsgsData, Prof::NocData),
            MsgClass::Control => (Metric::NocMsgsControl, Prof::NocControl),
            MsgClass::Offloaded => (Metric::NocMsgsOffloaded, Prof::NocOffloaded),
        };
        metrics::count(msgs);
        metrics::add(Metric::NocBytes, bytes);
        metrics::add(Metric::NocByteHops, byte_hops);
        metrics::observe(Hist::NocLatencyCycles, latency.raw() as f64);
        metrics::profile(prof, latency.raw());
    }
}

/// The mesh network: timing via per-link next-free-time resources, plus
/// traffic accounting.
///
/// The mesh is a *passive* model: callers ask when a message would arrive and
/// schedule their own delivery events. See the crate-level example.
#[derive(Debug)]
pub struct Mesh {
    config: MeshConfig,
    /// Directed link bandwidth ledgers indexed by `tile * 4 + direction`.
    links: Vec<BandwidthLedger>,
    traffic: TrafficStats,
    /// Reusable route buffer: `send` runs once per message, so routing must
    /// not allocate. Taken (and restored) around each use.
    route_scratch: Vec<Link>,
}

/// Direction of a mesh link from a tile.
fn dir_index(from: TileId, to: TileId, width: u16) -> usize {
    let (fx, fy) = from.xy(width);
    let (tx, ty) = to.xy(width);
    if tx == fx + 1 {
        0 // east
    } else if fx == tx + 1 {
        1 // west
    } else if ty == fy + 1 {
        2 // south
    } else if fy == ty + 1 {
        3 // north
    } else {
        panic!("{from} -> {to} is not a mesh-adjacent link");
    }
}

/// Cycles a sender waits before retransmitting a dropped message
/// (timeout detection; deterministic so fault runs replay exactly).
const RETRANSMIT_TIMEOUT: u64 = 32;

impl Mesh {
    /// Creates a mesh with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MeshConfig::validate`]; use
    /// [`Mesh::try_new`] to handle invalid configs gracefully.
    pub fn new(config: MeshConfig) -> Mesh {
        match Mesh::try_new(config) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a mesh, validating the configuration first.
    pub fn try_new(config: MeshConfig) -> Result<Mesh, SimError> {
        config.validate()?;
        let n = config.tiles() as usize * 4;
        Ok(Mesh {
            config,
            links: vec![BandwidthLedger::new(16, 16); n],
            traffic: TrafficStats::default(),
            route_scratch: Vec::with_capacity(64),
        })
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Accumulated traffic statistics.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Resets traffic statistics (e.g. after warmup).
    pub fn reset_traffic(&mut self) {
        self.traffic = TrafficStats::default();
    }

    /// Manhattan hop count between two tiles.
    pub fn hops(&self, src: TileId, dst: TileId) -> u64 {
        src.hops_to(dst, self.config.width)
    }

    /// Serialization occupancy of a message on one link, in cycles.
    fn flit_cycles(&self, bytes: u64) -> u64 {
        let total = bytes + self.config.header_bytes;
        total.div_ceil(self.config.link_bytes_per_cycle).max(1)
    }

    /// Books one traversal of `route` starting at `start`, returning the
    /// arrival time at the final tile.
    fn route_time(&mut self, start: Cycle, route: &[Link], flits: u64) -> Cycle {
        let mut t = start;
        for link in route {
            let idx = link.from.raw() as usize * 4 + dir_index(link.from, link.to, self.config.width);
            let tail = if self.config.contention {
                self.links[idx].book(t, flits)
            } else {
                t + (flits - 1)
            };
            t = tail + self.config.router_latency + self.config.link_latency;
        }
        t
    }

    /// Sends `bytes` of payload from `src` to `dst`, returning the arrival
    /// time. Local messages (src == dst) cost one cycle and no traffic.
    ///
    /// Traffic accounting charges `(payload + header) × hops` to `class`.
    ///
    /// When a fault plan is armed (see `nsc_sim::fault`), a message may be
    /// dropped (timeout + retransmission on the same route), duplicated
    /// (a discarded second copy consumes bandwidth), or delayed. Faults
    /// perturb only timing and traffic accounting — delivery is still
    /// guaranteed, so architectural results are unchanged.
    pub fn send(&mut self, now: Cycle, src: TileId, dst: TileId, bytes: u64, class: MsgClass) -> Cycle {
        if src == dst {
            return now + 1;
        }
        let mut route = std::mem::take(&mut self.route_scratch);
        route.clear();
        xy_route_into(src, dst, self.config.width, &mut route);
        let hops = route.len() as u64;
        let flits = self.flit_cycles(bytes);
        let mut arrival = self.route_time(now, &route, flits);
        if fault::active() {
            let wire_bytes = bytes + self.config.header_bytes;
            if fault::inject(FaultSite::NocDrop) {
                // The first copy is lost in-network: its link occupancy
                // and traffic still count, then the sender times out and
                // retransmits over the same route.
                self.traffic.record(class, wire_bytes, hops, arrival - now);
                trace::emit(|| TraceEvent::Fault {
                    at: arrival,
                    core: src.raw(),
                    site: FaultSite::NocDrop.label(),
                });
                let restart = arrival + RETRANSMIT_TIMEOUT;
                metrics::count(Metric::NocRetransmits);
                arrival = self.route_time(restart, &route, flits);
                trace::emit(|| TraceEvent::Recovery {
                    at: restart,
                    core: src.raw(),
                    stream: u16::MAX,
                    action: "retransmit",
                });
            } else if fault::inject(FaultSite::NocDuplicate) {
                // A spurious second copy rides the same route and is
                // discarded at the destination: extra bandwidth and
                // traffic, same arrival.
                self.traffic.record(class, wire_bytes, hops, arrival - now);
                self.route_time(now, &route, flits);
                trace::emit(|| TraceEvent::Fault {
                    at: now,
                    core: src.raw(),
                    site: FaultSite::NocDuplicate.label(),
                });
            }
            if fault::inject(FaultSite::NocDelay) {
                let d = fault::penalty(FaultSite::NocDelay);
                trace::emit(|| TraceEvent::Fault {
                    at: arrival,
                    core: src.raw(),
                    site: FaultSite::NocDelay.label(),
                });
                arrival += d;
            }
        }
        self.route_scratch = route;
        self.traffic
            .record(class, bytes + self.config.header_bytes, hops, arrival - now);
        trace::emit(|| TraceEvent::NocMsg {
            start: now,
            end: arrival,
            src: src.raw(),
            dst: dst.raw(),
            bytes: (bytes + self.config.header_bytes) as u32,
            hops: hops as u16,
            class: class.label(),
        });
        trace::sample("noc.links_busy", 0, arrival, || self.total_link_busy() as f64);
        arrival
    }

    /// Multicasts `bytes` from `src` to each destination, returning the
    /// latest arrival. The router supports tree multicast (paper Table V),
    /// so each link in the union of X-Y routes is charged exactly once.
    pub fn multicast(
        &mut self,
        now: Cycle,
        src: TileId,
        dsts: &[TileId],
        bytes: u64,
        class: MsgClass,
    ) -> Cycle {
        let mut union = std::mem::take(&mut self.route_scratch);
        union.clear();
        let mut max_arrival = now + 1;
        let flits = self.flit_cycles(bytes);
        for &dst in dsts {
            if dst == src {
                continue;
            }
            let before = union.len();
            xy_route_into(src, dst, self.config.width, &mut union);
            let t = now
                + (union.len() - before) as u64
                    * (self.config.router_latency + self.config.link_latency);
            max_arrival = max_arrival.max(t + (flits - 1));
        }
        // Tree multicast charges each link of the route union exactly once.
        union.sort_unstable();
        union.dedup();
        for link in &union {
            let idx = link.from.raw() as usize * 4 + dir_index(link.from, link.to, self.config.width);
            if self.config.contention {
                self.links[idx].book(now, flits);
            }
        }
        if !union.is_empty() {
            let hops = union.len() as u64;
            self.traffic
                .record(class, bytes + self.config.header_bytes, hops, max_arrival - now);
            trace::emit(|| TraceEvent::NocMsg {
                start: now,
                end: max_arrival,
                src: src.raw(),
                // A multicast has no single destination; report the last
                // non-local target and the union link count as hops.
                dst: dsts.iter().rev().find(|d| **d != src).map_or(0, |d| d.raw()),
                bytes: (bytes + self.config.header_bytes) as u32,
                hops: hops as u16,
                class: class.label(),
            });
        }
        self.route_scratch = union;
        max_arrival
    }

    /// Accounts traffic for a message without computing timing. Used by the
    /// ideal (zero-latency) system studies of Figure 1(b).
    pub fn account_only(&mut self, src: TileId, dst: TileId, bytes: u64, class: MsgClass) {
        if src == dst {
            return;
        }
        let hops = self.hops(src, dst);
        self.traffic.record(class, bytes, hops, Cycle::ZERO);
    }
}

impl Mesh {
    /// Peak per-link occupancy in flit-cycles (diagnostic).
    pub fn max_link_busy(&self) -> u64 {
        self.links.iter().map(|l| l.total_booked()).max().unwrap_or(0)
    }

    /// Total link occupancy in flit-cycles (diagnostic).
    pub fn total_link_busy(&self) -> u64 {
        self.links.iter().map(|l| l.total_booked()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(MeshConfig {
            contention: false,
            ..MeshConfig::paper_8x8()
        })
    }

    #[test]
    fn local_send_is_one_cycle_no_traffic() {
        let mut m = mesh();
        let t = TileId(5);
        assert_eq!(m.send(Cycle(10), t, t, 64, MsgClass::Data), Cycle(11));
        assert_eq!(m.traffic().total_bytes_hops(), 0);
        assert_eq!(m.traffic().total_messages(), 0);
    }

    #[test]
    fn latency_scales_with_hops() {
        let mut m = mesh();
        let a = TileId::from_xy(0, 0, 8);
        let b = TileId::from_xy(1, 0, 8); // 1 hop
        let c = TileId::from_xy(4, 0, 8); // 4 hops
        let t1 = m.send(Cycle(0), a, b, 8, MsgClass::Control);
        let t4 = m.send(Cycle(0), a, c, 8, MsgClass::Control);
        // per hop: 5 router + 1 link = 6 cycles; 16-byte msg on 32B link = 1 flit
        assert_eq!(t1, Cycle(6));
        assert_eq!(t4, Cycle(24));
    }

    #[test]
    fn accounting_includes_header() {
        let mut m = mesh();
        let a = TileId::from_xy(0, 0, 8);
        let b = TileId::from_xy(2, 1, 8); // 3 hops
        m.send(Cycle(0), a, b, 64, MsgClass::Data);
        assert_eq!(m.traffic().bytes_hops(MsgClass::Data), (64 + 8) * 3);
        assert_eq!(m.traffic().bytes(MsgClass::Data), 72);
        assert_eq!(m.traffic().messages(MsgClass::Data), 1);
        assert_eq!(m.traffic().hops(MsgClass::Data), 3);
    }

    #[test]
    fn serialization_tail_adds_latency() {
        let mut m = mesh();
        let a = TileId::from_xy(0, 0, 8);
        let b = TileId::from_xy(1, 0, 8);
        // 64+8 = 72 bytes over 32 B/cycle = 3 flits => 2 extra tail cycles.
        let t = m.send(Cycle(0), a, b, 64, MsgClass::Data);
        assert_eq!(t, Cycle(6 + 2));
    }

    #[test]
    fn contention_delays_second_message() {
        let mut m = Mesh::new(MeshConfig::paper_8x8());
        let a = TileId::from_xy(0, 0, 8);
        let b = TileId::from_xy(1, 0, 8);
        let t1 = m.send(Cycle(0), a, b, 64, MsgClass::Data); // 3 flits
        let t2 = m.send(Cycle(0), a, b, 64, MsgClass::Data); // queues behind
        assert_eq!(t1, Cycle(9));
        assert_eq!(t2, Cycle(12));
    }

    #[test]
    fn multicast_charges_union_once() {
        let mut m = mesh();
        let src = TileId::from_xy(0, 0, 8);
        // Both routes share the first east link.
        let d1 = TileId::from_xy(2, 0, 8);
        let d2 = TileId::from_xy(2, 1, 8);
        m.multicast(Cycle(0), src, &[d1, d2], 8, MsgClass::Offloaded);
        // Union: (0,0)->(1,0)->(2,0)->(2,1): 3 links, charged once each.
        assert_eq!(m.traffic().bytes_hops(MsgClass::Offloaded), 16 * 3);
        assert_eq!(m.traffic().messages(MsgClass::Offloaded), 1);
    }

    #[test]
    fn multicast_to_self_only_is_free() {
        let mut m = mesh();
        let src = TileId(0);
        let t = m.multicast(Cycle(5), src, &[src], 8, MsgClass::Control);
        assert_eq!(t, Cycle(6));
        assert_eq!(m.traffic().total_messages(), 0);
    }

    #[test]
    fn account_only_skips_timing() {
        let mut m = mesh();
        m.account_only(TileId(0), TileId(7), 64, MsgClass::Data);
        assert_eq!(m.traffic().bytes_hops(MsgClass::Data), 64 * 7);
        assert_eq!(m.traffic().latency().max(), Some(0.0));
    }

    #[test]
    fn reset_traffic_clears() {
        let mut m = mesh();
        m.send(Cycle(0), TileId(0), TileId(1), 64, MsgClass::Data);
        m.reset_traffic();
        assert_eq!(m.traffic().total_bytes_hops(), 0);
    }

    #[test]
    fn config_validation_names_the_problem() {
        let cfg = MeshConfig {
            width: 0,
            ..MeshConfig::paper_8x8()
        };
        let e = Mesh::try_new(cfg).unwrap_err();
        assert!(e.to_string().contains("non-zero"), "{e}");
        let cfg = MeshConfig {
            link_bytes_per_cycle: 0,
            ..MeshConfig::paper_8x8()
        };
        assert!(Mesh::try_new(cfg).is_err());
        let cfg = MeshConfig {
            width: 300,
            height: 300,
            ..MeshConfig::paper_8x8()
        };
        let e = Mesh::try_new(cfg).unwrap_err();
        assert!(e.to_string().contains("tile id"), "{e}");
        assert!(Mesh::try_new(MeshConfig::small_4x4()).is_ok());
    }

    #[test]
    fn dropped_message_is_retransmitted_and_double_charged() {
        use nsc_sim::fault::{self, FaultPlan};
        let a = TileId::from_xy(0, 0, 8);
        let b = TileId::from_xy(1, 0, 8);
        let mut clean = mesh();
        let t_clean = clean.send(Cycle(0), a, b, 8, MsgClass::Data);

        let mut plan = FaultPlan::none();
        plan.noc_drop = 1.0;
        fault::install(plan);
        let mut m = mesh();
        let t = m.send(Cycle(0), a, b, 8, MsgClass::Data);
        let stats = fault::uninstall().unwrap();
        assert_eq!(stats.count(fault::FaultSite::NocDrop), 1);
        assert!(t > t_clean, "retransmission must add latency: {t:?} vs {t_clean:?}");
        // Both copies (lost + retransmitted) consumed wire bandwidth.
        assert_eq!(
            m.traffic().bytes(MsgClass::Data),
            2 * clean.traffic().bytes(MsgClass::Data)
        );
    }

    #[test]
    fn duplicate_costs_bandwidth_but_not_latency() {
        use nsc_sim::fault::{self, FaultPlan};
        let a = TileId::from_xy(0, 0, 8);
        let b = TileId::from_xy(3, 2, 8);
        let mut clean = mesh();
        let t_clean = clean.send(Cycle(0), a, b, 8, MsgClass::Offloaded);

        let mut plan = FaultPlan::none();
        plan.noc_duplicate = 1.0;
        fault::install(plan);
        let mut m = mesh();
        let t = m.send(Cycle(0), a, b, 8, MsgClass::Offloaded);
        fault::uninstall();
        assert_eq!(t, t_clean, "a discarded duplicate must not delay delivery");
        assert_eq!(m.traffic().messages(MsgClass::Offloaded), 2);
    }

    #[test]
    fn delay_fault_adds_exactly_the_planned_cycles() {
        use nsc_sim::fault::{self, FaultPlan};
        let a = TileId::from_xy(0, 0, 8);
        let b = TileId::from_xy(1, 0, 8);
        let mut clean = mesh();
        let t_clean = clean.send(Cycle(0), a, b, 8, MsgClass::Control);

        let mut plan = FaultPlan::none();
        plan.noc_delay = 1.0;
        plan.noc_delay_cycles = 25;
        fault::install(plan);
        let mut m = mesh();
        let t = m.send(Cycle(0), a, b, 8, MsgClass::Control);
        fault::uninstall();
        assert_eq!(t, t_clean + 25);
    }

    #[test]
    fn inert_plan_reproduces_fault_free_timing() {
        use nsc_sim::fault::{self, FaultPlan};
        let a = TileId::from_xy(0, 0, 8);
        let b = TileId::from_xy(4, 4, 8);
        let mut clean = Mesh::new(MeshConfig::paper_8x8());
        let t_clean = clean.send(Cycle(0), a, b, 64, MsgClass::Data);
        fault::install(FaultPlan::none());
        let mut m = Mesh::new(MeshConfig::paper_8x8());
        let t = m.send(Cycle(0), a, b, 64, MsgClass::Data);
        fault::uninstall();
        assert_eq!(t, t_clean);
        assert_eq!(
            m.traffic().total_bytes_hops(),
            clean.traffic().total_bytes_hops()
        );
    }
}
