//! Mesh network-on-chip model for the near-stream computing suite.
//!
//! Models the paper's 8x8 mesh (Table V: 256-bit 1-cycle links, 5-stage
//! routers, X-Y dimension-order routing, multicast support) with
//! next-free-time link contention and per-message-class traffic accounting
//! in bytes × hops — the metric reported in the paper's Figures 1(b) and 12.
//!
//! # Examples
//!
//! ```
//! use nsc_noc::{Mesh, MeshConfig, MsgClass, TileId};
//! use nsc_sim::Cycle;
//!
//! let mut mesh = Mesh::new(MeshConfig::paper_8x8());
//! let src = TileId::from_xy(0, 0, 8);
//! let dst = TileId::from_xy(3, 4, 8);
//! let arrival = mesh.send(Cycle(0), src, dst, 64, MsgClass::Data);
//! assert!(arrival > Cycle(0));
//! assert_eq!(mesh.traffic().bytes_hops(MsgClass::Data), (64 + 8) * 7);
//! ```

pub mod mesh;
pub mod topology;

pub use mesh::{Mesh, MeshConfig, MsgClass, TrafficStats};
pub use topology::TileId;
