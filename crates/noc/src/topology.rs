//! Mesh coordinates and dimension-order routing.

use std::fmt;

/// Identifies one tile (core + L3 bank + router) in the mesh.
///
/// Tiles are numbered row-major: `id = y * width + x`.
///
/// # Examples
///
/// ```
/// use nsc_noc::TileId;
/// let t = TileId::from_xy(3, 2, 8);
/// assert_eq!(t.raw(), 19);
/// assert_eq!(t.xy(8), (3, 2));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId(pub u16);

impl TileId {
    /// Builds a tile id from mesh coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x >= width`.
    pub fn from_xy(x: u16, y: u16, width: u16) -> TileId {
        assert!(x < width, "x={x} out of bounds for width {width}");
        TileId(y * width + x)
    }

    /// Returns the raw index.
    pub fn raw(self) -> u16 {
        self.0
    }

    /// Returns `(x, y)` coordinates in a mesh of the given width.
    pub fn xy(self, width: u16) -> (u16, u16) {
        (self.0 % width, self.0 / width)
    }

    /// Manhattan hop distance to `other` in a mesh of the given width.
    pub fn hops_to(self, other: TileId, width: u16) -> u64 {
        let (x0, y0) = self.xy(width);
        let (x1, y1) = other.xy(width);
        (x0.abs_diff(x1) + y0.abs_diff(y1)) as u64
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u16> for TileId {
    fn from(v: u16) -> TileId {
        TileId(v)
    }
}

/// One directed link between adjacent routers, identified by its endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Link {
    /// Source tile of the directed link.
    pub from: TileId,
    /// Destination tile of the directed link (always mesh-adjacent to `from`).
    pub to: TileId,
}

/// Computes the X-Y (dimension-order) route from `src` to `dst`, returning
/// the sequence of directed links traversed.
///
/// X-Y routing first moves along the x dimension, then along y; it is
/// deadlock-free on a mesh and is what the paper's Garnet configuration uses.
///
/// # Examples
///
/// ```
/// use nsc_noc::topology::{xy_route, TileId};
/// let route = xy_route(TileId::from_xy(0, 0, 4), TileId::from_xy(2, 1, 4), 4);
/// assert_eq!(route.len(), 3);
/// assert_eq!(route[0].from, TileId::from_xy(0, 0, 4));
/// assert_eq!(route.last().unwrap().to, TileId::from_xy(2, 1, 4));
/// ```
pub fn xy_route(src: TileId, dst: TileId, width: u16) -> Vec<Link> {
    let mut links = Vec::with_capacity(src.hops_to(dst, width) as usize);
    xy_route_into(src, dst, width, &mut links);
    links
}

/// Allocation-free variant of [`xy_route`]: appends the route's links to
/// `out` without clearing it. Callers on the per-message hot path keep a
/// scratch buffer alive across sends instead of allocating per route.
pub fn xy_route_into(src: TileId, dst: TileId, width: u16, out: &mut Vec<Link>) {
    let (mut x, mut y) = src.xy(width);
    let (dx, dy) = dst.xy(width);
    let mut cur = src;
    while x != dx {
        x = if x < dx { x + 1 } else { x - 1 };
        let next = TileId::from_xy(x, y, width);
        out.push(Link { from: cur, to: next });
        cur = next;
    }
    while y != dy {
        y = if y < dy { y + 1 } else { y - 1 };
        let next = TileId::from_xy(x, y, width);
        out.push(Link { from: cur, to: next });
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_numbering() {
        assert_eq!(TileId::from_xy(0, 0, 8).raw(), 0);
        assert_eq!(TileId::from_xy(7, 0, 8).raw(), 7);
        assert_eq!(TileId::from_xy(0, 1, 8).raw(), 8);
        assert_eq!(TileId::from_xy(7, 7, 8).raw(), 63);
    }

    #[test]
    fn hops_are_manhattan() {
        let a = TileId::from_xy(1, 1, 8);
        let b = TileId::from_xy(6, 3, 8);
        assert_eq!(a.hops_to(b, 8), 7);
        assert_eq!(b.hops_to(a, 8), 7);
        assert_eq!(a.hops_to(a, 8), 0);
    }

    #[test]
    fn route_length_matches_hops() {
        let a = TileId::from_xy(5, 2, 8);
        let b = TileId::from_xy(1, 7, 8);
        let r = xy_route(a, b, 8);
        assert_eq!(r.len() as u64, a.hops_to(b, 8));
        // links must chain
        for pair in r.windows(2) {
            assert_eq!(pair[0].to, pair[1].from);
        }
    }

    #[test]
    fn route_is_x_then_y() {
        let r = xy_route(TileId::from_xy(0, 0, 8), TileId::from_xy(2, 2, 8), 8);
        let (x1, y1) = r[0].to.xy(8);
        assert_eq!((x1, y1), (1, 0)); // x moves first
        let (x2, y2) = r[1].to.xy(8);
        assert_eq!((x2, y2), (2, 0));
        let (x3, y3) = r[2].to.xy(8);
        assert_eq!((x3, y3), (2, 1));
    }

    #[test]
    fn empty_route_for_self() {
        let t = TileId::from_xy(4, 4, 8);
        assert!(xy_route(t, t, 8).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_xy_validates() {
        let _ = TileId::from_xy(8, 0, 8);
    }
}
