//! One command-line parser for every harness binary.
//!
//! Historically each of the 20 fig/tab bins scanned `std::env::args`
//! itself, so flag handling drifted (and typos were silently ignored).
//! [`Cli`] centralizes the shared surface — `--tiny`/`--small`/`--full`,
//! `--jobs N`, `--no-cache`, a generated `--help` — and lets a bin
//! declare its own extras ([`Cli::flag`], [`Cli::opt`],
//! [`Cli::positional`]). Unknown flags are an error, not a shrug.
//!
//! # Examples
//!
//! ```no_run
//! let args = nsc_bench::Cli::new("fig09_speedup", "Figure 9: speedup over Base")
//!     .parse();
//! let size = args.size;
//! ```

use nsc_sim::cache;
use nsc_workloads::Size;
use std::collections::HashMap;

/// Parses `"tiny"` / `"small"` / `"full"` / `"paper"` into a [`Size`]
/// (the `nscd` wire protocol and the `--help` text share this spelling).
pub fn size_from_str(s: &str) -> Option<Size> {
    match s {
        "tiny" => Some(Size::Tiny),
        "small" => Some(Size::Small),
        "full" | "paper" => Some(Size::Paper),
        _ => None,
    }
}

struct ExtraFlag {
    name: &'static str,
    help: &'static str,
}

struct ExtraOpt {
    name: &'static str,
    value_name: &'static str,
    help: &'static str,
}

/// Declarative description of a harness's command line; build with the
/// chained methods, then call [`Cli::parse`].
pub struct Cli {
    bin: &'static str,
    about: &'static str,
    flags: Vec<ExtraFlag>,
    opts: Vec<ExtraOpt>,
    positional: Option<(&'static str, &'static str)>,
}

/// Parsed arguments.
pub struct Args {
    /// The workload scale (`--tiny` / `--small` / `--full`; default small).
    pub size: Size,
    flags: HashMap<&'static str, bool>,
    opts: HashMap<&'static str, String>,
    positional: Option<String>,
}

impl Args {
    /// Whether the extra boolean flag `--<name>` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.get(name).copied().unwrap_or(false)
    }

    /// The value of the extra option `--<name>`, if given.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.opts.get(name).map(String::as_str)
    }

    /// The extra option `--<name>` parsed as `u64`, or `default`.
    pub fn opt_u64(&self, name: &str, default: u64) -> u64 {
        self.opt(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// The positional argument, if the [`Cli`] declared one and it was
    /// given.
    pub fn positional(&self) -> Option<&str> {
        self.positional.as_deref()
    }
}

impl Cli {
    /// Starts a command-line description for binary `bin`.
    pub fn new(bin: &'static str, about: &'static str) -> Cli {
        Cli {
            bin,
            about,
            flags: Vec::new(),
            opts: Vec::new(),
            positional: None,
        }
    }

    /// Declares an extra boolean flag `--<name>`.
    pub fn flag(mut self, name: &'static str, help: &'static str) -> Cli {
        self.flags.push(ExtraFlag { name, help });
        self
    }

    /// Declares an extra valued option `--<name> <value_name>`.
    pub fn opt(mut self, name: &'static str, value_name: &'static str, help: &'static str) -> Cli {
        self.opts.push(ExtraOpt { name, value_name, help });
        self
    }

    /// Declares an optional positional argument.
    pub fn positional(mut self, name: &'static str, help: &'static str) -> Cli {
        self.positional = Some((name, help));
        self
    }

    fn usage(&self) -> String {
        let mut u = format!("{} — {}\n\nUsage: {} [OPTIONS]", self.bin, self.about, self.bin);
        if let Some((name, _)) = self.positional {
            u.push_str(&format!(" [{name}]"));
        }
        u.push_str("\n\nOptions:\n");
        u.push_str("  --tiny           smallest inputs (seconds; CI scale)\n");
        u.push_str("  --small          1/16-scale inputs (default)\n");
        u.push_str("  --full, --paper  the paper's Table VI parameters\n");
        u.push_str("  --jobs N         worker threads for sweeps (sets NSC_JOBS)\n");
        u.push_str("  --no-cache       ignore the result cache even if NSC_CACHE=1\n");
        for f in &self.flags {
            u.push_str(&format!("  --{:<15}{}\n", f.name, f.help));
        }
        for o in &self.opts {
            u.push_str(&format!("  --{:<15}{}\n", format!("{} {}", o.name, o.value_name), o.help));
        }
        if let Some((name, help)) = self.positional {
            u.push_str(&format!("  {name:<17}{help}\n"));
        }
        u.push_str("  -h, --help       print this help\n");
        u
    }

    /// Parses `std::env::args`, exiting with the usage text on `--help`
    /// (status 0) or any unknown/malformed argument (status 2).
    ///
    /// `--jobs N` is exported as `NSC_JOBS` so the [`crate::Sweep`] pool
    /// (and anything else reading the environment) sees it; `--no-cache`
    /// disarms [`nsc_sim::cache`] for the process.
    pub fn parse(&self) -> Args {
        match self.try_parse(std::env::args().skip(1)) {
            Ok(Some(args)) => args,
            Ok(None) => {
                println!("{}", self.usage());
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("{}: {msg}\n\n{}", self.bin, self.usage());
                std::process::exit(2);
            }
        }
    }

    /// Testable core of [`Cli::parse`]: `Ok(None)` means help was
    /// requested.
    pub fn try_parse(&self, argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
        let mut args = Args {
            size: Size::Small,
            flags: HashMap::new(),
            opts: HashMap::new(),
            positional: None,
        };
        let mut argv = argv.peekable();
        while let Some(a) = argv.next() {
            match a.as_str() {
                "-h" | "--help" => return Ok(None),
                "--tiny" => args.size = Size::Tiny,
                "--small" => args.size = Size::Small,
                "--full" | "--paper" => args.size = Size::Paper,
                "--no-cache" => cache::set_disabled(true),
                "--jobs" => {
                    let v = argv.next().ok_or("--jobs requires a value")?;
                    v.parse::<usize>().map_err(|_| format!("invalid --jobs value: {v}"))?;
                    std::env::set_var("NSC_JOBS", v);
                }
                other => {
                    if let Some(jobs) = other.strip_prefix("--jobs=") {
                        jobs.parse::<usize>()
                            .map_err(|_| format!("invalid --jobs value: {jobs}"))?;
                        std::env::set_var("NSC_JOBS", jobs);
                        continue;
                    }
                    if let Some(rest) = other.strip_prefix("--") {
                        let (name, inline) = match rest.split_once('=') {
                            Some((n, v)) => (n, Some(v.to_owned())),
                            None => (rest, None),
                        };
                        if let Some(f) = self.flags.iter().find(|f| f.name == name) {
                            if inline.is_some() {
                                return Err(format!("--{} does not take a value", f.name));
                            }
                            args.flags.insert(f.name, true);
                            continue;
                        }
                        if let Some(o) = self.opts.iter().find(|o| o.name == name) {
                            let v = match inline {
                                Some(v) => v,
                                None => argv
                                    .next()
                                    .ok_or_else(|| format!("--{} requires a value", o.name))?,
                            };
                            args.opts.insert(o.name, v);
                            continue;
                        }
                        return Err(format!("unknown flag: {other}"));
                    }
                    if self.positional.is_some() && args.positional.is_none() {
                        args.positional = Some(a);
                    } else {
                        return Err(format!("unexpected argument: {a}"));
                    }
                }
            }
        }
        Ok(Some(args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(cli: &Cli, argv: &[&str]) -> Result<Option<Args>, String> {
        cli.try_parse(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn sizes_and_defaults() {
        let cli = Cli::new("t", "test");
        assert!(matches!(parse(&cli, &[]).unwrap().unwrap().size, Size::Small));
        assert!(matches!(parse(&cli, &["--tiny"]).unwrap().unwrap().size, Size::Tiny));
        assert!(matches!(parse(&cli, &["--full"]).unwrap().unwrap().size, Size::Paper));
        assert!(matches!(parse(&cli, &["--paper"]).unwrap().unwrap().size, Size::Paper));
    }

    #[test]
    fn unknown_flags_error() {
        let cli = Cli::new("t", "test");
        assert!(parse(&cli, &["--bogus"]).is_err());
        assert!(parse(&cli, &["stray"]).is_err());
        assert!(parse(&cli, &["--jobs", "zero?"]).is_err());
        assert!(parse(&cli, &["--jobs"]).is_err());
    }

    #[test]
    fn help_is_generated() {
        let cli = Cli::new("t", "test").flag("x", "flag x").opt("n", "N", "opt n");
        assert!(parse(&cli, &["--help"]).unwrap().is_none());
        assert!(parse(&cli, &["-h"]).unwrap().is_none());
        let u = cli.usage();
        for needle in ["--tiny", "--jobs", "--no-cache", "--x", "--n N", "flag x", "opt n"] {
            assert!(u.contains(needle), "usage missing {needle:?}:\n{u}");
        }
    }

    #[test]
    fn extras_parse() {
        let cli = Cli::new("t", "test")
            .flag("nocontention", "disable contention")
            .opt("seeds", "N", "seed count")
            .positional("workload", "workload name");
        let a = parse(&cli, &["--nocontention", "--seeds", "5", "bfs"]).unwrap().unwrap();
        assert!(a.flag("nocontention"));
        assert_eq!(a.opt_u64("seeds", 1), 5);
        assert_eq!(a.positional(), Some("bfs"));
        let a = parse(&cli, &["--seeds=7"]).unwrap().unwrap();
        assert_eq!(a.opt_u64("seeds", 1), 7);
        assert!(!a.flag("nocontention"));
        assert_eq!(a.opt_u64("missing", 9), 9);
        assert!(parse(&cli, &["--nocontention=1"]).is_err());
        assert!(parse(&cli, &["a", "b"]).is_err());
    }

    #[test]
    fn size_strings_roundtrip() {
        assert!(matches!(size_from_str("tiny"), Some(Size::Tiny)));
        assert!(matches!(size_from_str("small"), Some(Size::Small)));
        assert!(matches!(size_from_str("full"), Some(Size::Paper)));
        assert!(matches!(size_from_str("paper"), Some(Size::Paper)));
        assert!(size_from_str("huge").is_none());
    }
}
