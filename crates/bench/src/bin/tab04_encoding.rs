//! Table IV: the stream-configuration encoding — field widths, total
//! record sizes and a round-trip exercise.

use nsc_bench::{finalize, Cli, Report};
use nsc_ir::encoding::{AffineConfig, ComputeConfig, IndirectConfig};
use nsc_workloads::Size;

fn main() {
    Cli::new("tab04_encoding", "Table IV: stream-configuration encoding").parse();
    let mut rep = Report::new("tab04_encoding", Size::Paper);
    rep.meta("table", "IV");
    rep.stat("bits.affine", AffineConfig::BITS as f64);
    rep.stat("bits.indirect", IndirectConfig::BITS as f64);
    rep.stat("bits.compute", ComputeConfig::BITS as f64);
    rep.stat("config_message_bytes", ComputeConfig::config_message_bytes() as f64);
    println!("# Table IV: near-stream configuration encoding");
    println!("affine record:   {:>4} bits ({} bytes packed)", AffineConfig::BITS, (AffineConfig::BITS as usize).div_ceil(8));
    println!("indirect record: {:>4} bits ({} bytes packed)", IndirectConfig::BITS, (IndirectConfig::BITS as usize).div_ceil(8));
    println!("compute record:  {:>4} bits ({} bytes packed)", ComputeConfig::BITS, (ComputeConfig::BITS as usize).div_ceil(8));
    println!("configure message (affine+compute): {} bytes", ComputeConfig::config_message_bytes());
    // Round-trip exercise over a spread of field values.
    for sid in [0u8, 7, 15] {
        let a = AffineConfig {
            cid: 63,
            sid,
            base: 0xABCD_0000 + sid as u64,
            strides: [8, 4096, 1 << 20],
            ptbl: 0xFFF0_0000,
            iter: 1 << 30,
            size: 64,
            lens: [1 << 20, 16, 2],
        };
        assert_eq!(AffineConfig::decode(&a.encode()), a);
        let c = ComputeConfig {
            ctype: sid % 16,
            arg_sids: [sid; 8],
            ret_log2: 3,
            fptr: 0x40_0000 + sid as u64,
            arg_size_log2: [3; 8],
            const_data: u64::MAX - sid as u64,
        };
        assert_eq!(ComputeConfig::decode(&c.encode()), c);
    }
    println!("round-trip: ok");
    finalize(rep);
}
