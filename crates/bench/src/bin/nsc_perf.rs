//! `nsc_perf` — the pinned-workload performance-regression harness.
//!
//! Runs a fixed set of workloads that exercise every layer of the stack
//! (calendar-queue microbench, expression-evaluation storm, tiny
//! fig09/fig12 subsets, result-cache warm replay, an `nscd` daemon round
//! trip) and writes `results/BENCH_<label>.json` (schema `nsc-perf-v1`):
//! per-workload wall-clock milliseconds plus key *simulated* counters.
//! The sim counters are bit-deterministic, so a comparison can demand
//! exact equality on them while allowing a generous tolerance on wall
//! time:
//!
//! ```text
//! nsc_perf --tiny --label baseline          # write BENCH_baseline.json
//! nsc_perf --compare results/BENCH_baseline.json results/BENCH_current.json
//! nsc_perf --tiny --only expr_storm         # run a single leg
//! ```
//!
//! `--compare` exits non-zero when any sim counter differs or any
//! workload's wall time exceeds `base * tol` (`--wall-tol`, default
//! 2.0). Workloads may also carry a `series` object of *toleranced*
//! floats (serving throughput, tail latency, speedups — quantities
//! derived from host timing that can never be exact); those get a
//! direction-aware factor band (`--serve-tol`, default 3.0). `nsc_load
//! --bench-out` emits a compatible file so serving regressions ride the
//! same gate. Regenerate the committed baseline with `scripts/ci.sh`'s
//! reference recipe (see README "Perf baseline").

use near_stream::ExecMode;
use nsc_bench::{prepare, system_for, Cli};
use nsc_sim::json::{escape, fmt_f64, parse, Json};
use nsc_sim::rng::Rng;
use nsc_sim::cache::{self, CacheStore};
use nsc_sim::{Cycle, EventQueue};
use nsc_workloads::Size;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::path::PathBuf;
use std::time::Instant;

/// One pinned workload's measurements: host wall time plus deterministic
/// simulated counters, plus optional *toleranced* float series (host-
/// timing-derived quantities like throughput that can never be exact).
struct Measurement {
    name: &'static str,
    wall_ms: f64,
    counters: Vec<(String, u64)>,
    /// Toleranced series: keys ending `_rps` / `_x` are higher-is-better,
    /// everything else lower-is-better (see `--serve-tol`).
    series: Vec<(&'static str, f64)>,
}

fn main() {
    // The result cache latches NSC_CACHE on its first query, so the
    // environment must be pinned before anything touches it: cache ON,
    // in a private scratch directory, so the warm-replay workload is
    // reproducible no matter what the caller's environment says.
    let scratch = std::env::temp_dir().join(format!("nsc-perf-cache-{}", std::process::id()));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("--compare") {
        std::process::exit(compare_cmd(&argv[1..]));
    }
    std::env::set_var("NSC_CACHE", "1");
    std::env::set_var("NSC_CACHE_DIR", &scratch);

    let cli = Cli::new("nsc_perf", "pinned-workload perf harness (see --compare)")
        .opt("label", "L", "output label: results/BENCH_<L>.json (default current)")
        .opt("only", "NAME", "run only the named workload leg")
        .opt("compare", "BASE NEW", "compare two BENCH files (use as first argument)");
    let args = cli.parse();
    let size = args.size;
    let label = args.opt("label").unwrap_or("current").to_owned();
    let only = args.opt("only").map(str::to_owned);

    type Leg = fn(Size) -> Measurement;
    let legs: [(&str, Leg); 6] = [
        ("calendar_queue", calendar_queue),
        ("expr_storm", expr_storm),
        ("fig09_tiny", fig09_subset),
        ("fig12_tiny", fig12_subset),
        ("cache_warm", cache_warm_replay),
        ("nscd_roundtrip", nscd_roundtrip),
    ];
    if let Some(name) = &only {
        assert!(
            legs.iter().any(|(n, _)| n == name),
            "--only {name}: no such leg (have: {})",
            legs.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
        );
    }
    let mut runs = Vec::new();
    for (name, work) in legs {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let m = work(size);
        eprintln!("nsc_perf: {:18} {:9.2} ms, {} counters", m.name, m.wall_ms, m.counters.len());
        runs.push(m);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let path = write_bench(&label, size, &runs);
    println!("{}", path.display());
}

/// Calendar-queue microbench: a deterministic push/pop storm through the
/// ring, the same-day tie path and the overflow heap.
fn calendar_queue(size: Size) -> Measurement {
    let events: u64 = match size {
        Size::Tiny => 200_000,
        Size::Small => 1_000_000,
        Size::Paper => 4_000_000,
    };
    let t0 = Instant::now();
    let mut rng = Rng::seed_from_u64(0x9E3779B97F4A7C15);
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut now = 0u64;
    let mut pushed = 0u64;
    let mut popped = 0u64;
    let mut checksum = 0u64;
    while popped < events {
        if pushed < events && (q.is_empty() || !rng.next_u64().is_multiple_of(3)) {
            // Mostly near-future, occasionally far-future (overflow path).
            let delta = match rng.next_u64() % 16 {
                0 => rng.next_u64() % 100_000,
                1..=5 => 0,
                _ => rng.next_u64() % 96,
            };
            q.push(Cycle(now + delta), pushed);
            pushed += 1;
        } else {
            let (t, seq) = q.pop().expect("queue drained early");
            now = t.0;
            popped += 1;
            checksum = checksum
                .wrapping_mul(0x100000001B3)
                .wrapping_add(t.0 ^ seq);
        }
    }
    Measurement {
        name: "calendar_queue",
        wall_ms: ms(t0),
        counters: vec![
            ("events".into(), events),
            // Masked to 32 bits: counters round-trip through f64 JSON
            // numbers, which are only exact below 2^53.
            ("checksum".into(), checksum & 0xFFFF_FFFF),
            ("final_cycle".into(), now),
        ],
        series: Vec::new(),
    }
}

/// Deep random expression trees evaluated by the tree walker and by the
/// compiled register bytecode (`ExprCode`): pins bit-identity between
/// the two evaluators *and* tracks the compiled path's speedup as a
/// toleranced series. Exp is excluded from the op mix so the checksum
/// stays libm-independent; everything else is IEEE-exact.
fn expr_storm(size: Size) -> Measurement {
    use nsc_ir::{Expr, ExprCode, Scalar, VarId};
    const N_LOCALS: usize = 6;
    const N_PARAMS: u64 = 4;
    let (n_trees, evals) = match size {
        Size::Tiny => (64u64, 2_000u64),
        Size::Small => (128, 8_000),
        Size::Paper => (256, 32_000),
    };

    const BINOPS: [nsc_ir::BinOp; 16] = {
        use nsc_ir::BinOp::*;
        [Add, Sub, Mul, Div, Rem, Min, Max, And, Or, Xor, Shr, Shl, Lt, Le, Eq, Ne]
    };
    const UNOPS: [nsc_ir::UnOp; 4] = {
        use nsc_ir::UnOp::*;
        [Neg, Not, Abs, Sqrt]
    };
    fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
        if depth == 0 || rng.gen_range_u64(8) == 0 {
            return match rng.gen_range_u64(4) {
                0 => Expr::imm(rng.next_u64() as i64 % 1_000),
                1 => Expr::immf((rng.gen_f64() - 0.5) * 64.0),
                2 => Expr::param(rng.gen_range_u64(N_PARAMS) as u32),
                _ => Expr::var(VarId(rng.gen_range_u64(N_LOCALS as u64) as u16)),
            };
        }
        match rng.gen_range_u64(10) {
            0 => Expr::un(UNOPS[rng.gen_range_usize(UNOPS.len())], gen_expr(rng, depth - 1)),
            1 => Expr::select(
                gen_expr(rng, depth - 1),
                gen_expr(rng, depth - 1),
                gen_expr(rng, depth - 1),
            ),
            _ => Expr::bin(
                BINOPS[rng.gen_range_usize(BINOPS.len())],
                gen_expr(rng, depth - 1),
                gen_expr(rng, depth - 1),
            ),
        }
    }
    fn locals_for(i: u64) -> [Scalar; N_LOCALS] {
        let mut out = [Scalar::I64(0); N_LOCALS];
        for (j, l) in out.iter_mut().enumerate() {
            let x = i
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
            *l = if j % 2 == 0 {
                Scalar::I64((x as i64) >> 16)
            } else {
                Scalar::F64(((x >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0)
            };
        }
        out
    }
    fn mix(cs: u64, v: Scalar) -> u64 {
        let bits = match v {
            Scalar::I64(x) => x as u64,
            Scalar::F64(x) => x.to_bits(),
        };
        cs.rotate_left(7).wrapping_mul(0x100000001B3) ^ bits
    }

    let t0 = Instant::now();
    let mut rng = Rng::seed_from_u64(0x5DEE_CE66_D5DE_ECE6);
    let trees: Vec<Expr> = (0..n_trees).map(|_| gen_expr(&mut rng, 7)).collect();
    let params = [Scalar::I64(3), Scalar::F64(1.5), Scalar::I64(-7), Scalar::I64(1 << 20)];
    let nodes: u64 = trees.iter().map(|e| e.uops() as u64).sum();

    // Pass 1 — tree walker.
    let t_tree = Instant::now();
    let mut cs_tree = 0u64;
    for i in 0..evals {
        let locals = locals_for(i);
        for e in &trees {
            cs_tree = mix(cs_tree, e.eval(&locals, &params));
        }
    }
    let tree_ms = ms(t_tree);

    // Pass 2 — compiled bytecode (compile + bind amortized inside the
    // timed region, as the plan pass amortizes it over a kernel run).
    let t_bc = Instant::now();
    let mut codes: Vec<(ExprCode, Vec<Scalar>)> = trees
        .iter()
        .map(|e| {
            let c = ExprCode::compile(e, N_LOCALS as u16);
            let mut regs = Vec::new();
            c.bind(&params, &mut regs);
            (c, regs)
        })
        .collect();
    let bc_ops: u64 = codes.iter().map(|(c, _)| c.op_count() as u64).sum();
    let mut cs_bc = 0u64;
    for i in 0..evals {
        let locals = locals_for(i);
        for (c, regs) in &mut codes {
            cs_bc = mix(cs_bc, c.eval(&locals, regs));
        }
    }
    let bc_ms = ms(t_bc);
    assert_eq!(
        cs_tree, cs_bc,
        "bytecode and tree walker diverged over {n_trees} trees x {evals} evals"
    );
    let speedup = tree_ms / bc_ms.max(1e-6);
    eprintln!("nsc_perf: expr_storm tree {tree_ms:.2} ms, bytecode {bc_ms:.2} ms ({speedup:.2}x)");
    Measurement {
        name: "expr_storm",
        wall_ms: ms(t0),
        counters: vec![
            ("trees".into(), n_trees),
            ("evals".into(), evals),
            ("nodes".into(), nodes),
            ("bc_ops".into(), bc_ops),
            ("checksum".into(), cs_tree & 0xFFFF_FFFF),
        ],
        series: vec![("speedup_x", (speedup * 1e3).round() / 1e3)],
    }
}

/// The first workloads of the figure-9 sweep under Base and NS: an
/// end-to-end engine + memory + NoC regression anchor.
fn fig09_subset(size: Size) -> Measurement {
    let cfg = system_for(size);
    let t0 = Instant::now();
    let mut counters = Vec::new();
    for w in nsc_workloads::all(size).into_iter().take(3) {
        let p = prepare(w);
        for mode in [ExecMode::Base, ExecMode::Ns] {
            let (r, _mem) = p.run_unchecked(mode, &cfg);
            let tag = format!("{}.{}", p.workload.name, mode.label());
            counters.push((format!("{tag}.cycles"), r.cycles));
            counters.push((format!("{tag}.dram_reads"), r.mem.dram_reads));
            counters.push((format!("{tag}.l1_hits"), r.mem.l1_hits));
        }
    }
    Measurement { name: "fig09_tiny", wall_ms: ms(t0), counters, series: Vec::new() }
}

/// A figure-12 style traffic subset: byte×hop totals under NS and
/// NS-decouple pin the NoC accounting.
fn fig12_subset(size: Size) -> Measurement {
    let cfg = system_for(size);
    let t0 = Instant::now();
    let mut counters = Vec::new();
    for w in nsc_workloads::all(size).into_iter().take(2) {
        let p = prepare(w);
        for mode in [ExecMode::Ns, ExecMode::NsDecouple] {
            let (r, _mem) = p.run_unchecked(mode, &cfg);
            let tag = format!("{}.{}", p.workload.name, mode.label());
            counters.push((format!("{tag}.byte_hops"), r.traffic.total()));
            counters.push((format!("{tag}.messages"), r.traffic.messages));
        }
    }
    Measurement { name: "fig12_tiny", wall_ms: ms(t0), counters, series: Vec::new() }
}

/// Result-cache warm replay: one cold run that stores, one warm run that
/// must replay from the cache.
fn cache_warm_replay(size: Size) -> Measurement {
    assert!(cache::enabled(), "nsc_perf pins NSC_CACHE=1 before first use");
    let store = cache::shared();
    store.purge().expect("purge scratch cache");
    store.reset_stats();
    let cfg = system_for(size);
    let w = nsc_workloads::all(size).into_iter().next().expect("at least one workload");
    let p = prepare(w);
    let t0 = Instant::now();
    let cold = p.run_cached(ExecMode::Ns, &cfg);
    let warm = p.run_cached(ExecMode::Ns, &cfg);
    let s = store.stats();
    let (hits, misses) = (s.hits(), s.misses());
    assert_eq!(cold.cycles, warm.cycles, "replay must be exact");
    Measurement {
        name: "cache_warm",
        wall_ms: ms(t0),
        counters: vec![
            ("cycles".into(), cold.cycles),
            ("cache_hits".into(), hits),
            ("cache_misses".into(), misses),
        ],
        series: Vec::new(),
    }
}

/// Full daemon round trip: spawn the sibling `nscd` binary on a scratch
/// socket, submit two runs (the second replays from the shared cache),
/// and read the metrics snapshot back.
fn nscd_roundtrip(size: Size) -> Measurement {
    let nscd = std::env::current_exe()
        .expect("own path")
        .with_file_name("nscd");
    assert!(
        nscd.exists(),
        "{} not found — build the full workspace first (cargo build --release)",
        nscd.display()
    );
    let socket = std::env::temp_dir().join(format!("nsc-perf-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let t0 = Instant::now();
    let mut child = std::process::Command::new(&nscd)
        .arg("--socket")
        .arg(&socket)
        // One worker: the two identical runs serialize, so the second
        // deterministically replays the first from the result cache —
        // with two workers they race and `warm_cached` would flap.
        .arg("--jobs")
        .arg("1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn nscd");
    // Poll by *connecting*, not by the socket file's existence — the
    // path can be visible a beat before the daemon listens, and a
    // single connect() then gets ECONNREFUSED.
    let mut conn = None;
    for _ in 0..400 {
        if let Ok(s) = std::os::unix::net::UnixStream::connect(&socket) {
            conn = Some(s);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let sz = match size {
        Size::Tiny => "tiny",
        Size::Small => "small",
        Size::Paper => "full",
    };
    let lines = [
        format!("{{\"op\":\"run\",\"id\":1,\"workload\":\"bin_tree\",\"size\":\"{sz}\",\"mode\":\"NS\"}}"),
        format!("{{\"op\":\"run\",\"id\":2,\"workload\":\"bin_tree\",\"size\":\"{sz}\",\"mode\":\"NS\"}}"),
        "{\"op\":\"metrics\",\"id\":3}".to_owned(),
        "{\"op\":\"shutdown\",\"id\":4}".to_owned(),
    ];
    let mut stream = conn.unwrap_or_else(|| {
        let _ = child.kill();
        panic!("nscd never accepted on {}", socket.display())
    });
    stream
        .write_all((lines.join("\n") + "\n").as_bytes())
        .expect("send requests");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut resps = Vec::new();
    for line in BufReader::new(stream).lines() {
        let line = line.expect("read response");
        if !line.trim().is_empty() {
            resps.push(line);
        }
    }
    let _ = child.wait();
    let _ = std::fs::remove_file(&socket);
    assert_eq!(resps.len(), 4, "one response per request: {resps:?}");

    // Responses are flat protocol JSON; the generic parser reads them
    // fine, and the metrics snapshot is a nested document inside a
    // string field.
    let run1 = parse(&resps[0]).expect("run response parses");
    let cycles = run1.get("cycles").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    // Every live run now carries a per-request latency breakdown; count
    // its spans (deterministic — the span *names* are fixed even though
    // their durations are not).
    let latency_spans = run1
        .get("latency")
        .and_then(Json::as_str)
        .and_then(|s| parse(s).ok())
        .and_then(|t| t.get("spans").and_then(Json::as_arr).map(|s| s.len()))
        .unwrap_or(0) as u64;
    assert!(latency_spans >= 6, "run response latency has {latency_spans} spans, want ≥6");
    let run2 = parse(&resps[1]).expect("second run parses");
    let warm_cached = run2.get("cached") == Some(&Json::Bool(true));
    let snap_doc = parse(&resps[2]).expect("metrics response parses");
    let snap = parse(snap_doc.get("snapshot").and_then(Json::as_str).expect("snapshot field"))
        .expect("snapshot parses");
    let counter = |label: &str| {
        snap.get("counters")
            .and_then(|c| c.get(label))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64
    };
    Measurement {
        name: "nscd_roundtrip",
        wall_ms: ms(t0),
        counters: vec![
            ("cycles".into(), cycles),
            ("warm_cached".into(), warm_cached as u64),
            ("latency_spans".into(), latency_spans),
            ("serve_runs".into(), counter("serve.runs")),
            ("serve_runs_cached".into(), counter("serve.runs_cached")),
            ("result_cache_hits".into(), counter("result_cache.hits")),
        ],
        series: Vec::new(),
    }
}

fn ms(t0: Instant) -> f64 {
    (t0.elapsed().as_secs_f64() * 1e3 * 1e3).round() / 1e3
}

fn results_dir() -> PathBuf {
    std::env::var_os("NSC_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

fn write_bench(label: &str, size: Size, runs: &[Measurement]) -> PathBuf {
    let mut out = String::from("{\"schema\":\"nsc-perf-v1\"");
    let _ = write!(out, ",\"label\":\"{}\"", escape(label));
    let _ = write!(out, ",\"size\":\"{}\"", nsc_bench::size_label(size));
    out.push_str(",\"workloads\":{");
    for (i, m) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{{\"wall_ms\":{},\"counters\":{{", m.name, fmt_f64(m.wall_ms));
        for (j, (k, v)) in m.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape(k));
        }
        out.push('}');
        if !m.series.is_empty() {
            out.push_str(",\"series\":{");
            for (j, (k, v)) in m.series.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", escape(k), fmt_f64(*v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("}}\n");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("BENCH_{label}.json"));
    std::fs::write(&path, out).expect("write bench file");
    path
}

/// `--compare BASE NEW [--wall-tol X] [--serve-tol Y]`: exact equality
/// on every sim counter, `new.wall_ms <= base.wall_ms * X` on wall time,
/// and a direction-aware factor-`Y` band on every `series` entry — keys
/// ending `_rps` / `_x` are higher-is-better (regress when
/// `new < base / Y`), everything else lower-is-better (regress when
/// `new > base * Y`). Returns the process exit code.
fn compare_cmd(rest: &[String]) -> i32 {
    let mut paths = Vec::new();
    let mut wall_tol = 2.0f64;
    let mut serve_tol = 3.0f64;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--wall-tol" => {
                let v = it.next().expect("--wall-tol requires a value");
                wall_tol = v.parse().expect("--wall-tol wants a number");
            }
            "--serve-tol" => {
                let v = it.next().expect("--serve-tol requires a value");
                serve_tol = v.parse().expect("--serve-tol wants a number");
            }
            p => paths.push(p.to_owned()),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: nsc_perf --compare BASE NEW [--wall-tol X] [--serve-tol Y]");
        return 2;
    }
    let load = |p: &str| -> Json {
        let text = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("read {p}: {e}"));
        let doc = parse(&text).unwrap_or_else(|e| panic!("parse {p}: {e}"));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("nsc-perf-v1"),
            "{p}: not an nsc-perf-v1 file"
        );
        doc
    };
    let base = load(&paths[0]);
    let new = load(&paths[1]);
    let base_w = base.get("workloads").and_then(Json::as_obj).expect("base workloads");
    let new_w = new.get("workloads").and_then(Json::as_obj).expect("new workloads");

    let mut regressions = 0u32;
    for (name, bw) in base_w {
        let Some(nw) = new_w.get(name) else {
            eprintln!("REGRESSION {name}: missing from {}", paths[1]);
            regressions += 1;
            continue;
        };
        let b_ms = bw.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
        let n_ms = nw.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
        let limit = b_ms * wall_tol;
        if n_ms > limit {
            eprintln!(
                "REGRESSION {name}: wall {n_ms:.2} ms > {limit:.2} ms ({b_ms:.2} ms base x{wall_tol})"
            );
            regressions += 1;
        } else {
            println!("ok {name}: wall {n_ms:.2} ms (base {b_ms:.2} ms, limit {limit:.2} ms)");
        }
        let b_ctr = bw.get("counters").and_then(Json::as_obj).cloned().unwrap_or_default();
        let n_ctr = nw.get("counters").and_then(Json::as_obj).cloned().unwrap_or_default();
        for (k, bv) in &b_ctr {
            let bv = bv.as_f64().unwrap_or(0.0);
            match n_ctr.get(k).and_then(Json::as_f64) {
                Some(nv) if nv == bv => {}
                Some(nv) => {
                    eprintln!("REGRESSION {name}.{k}: sim counter {nv} != baseline {bv}");
                    regressions += 1;
                }
                None => {
                    eprintln!("REGRESSION {name}.{k}: counter missing from {}", paths[1]);
                    regressions += 1;
                }
            }
        }
        for k in n_ctr.keys() {
            if !b_ctr.contains_key(k) {
                eprintln!(
                    "note: {name}.{k} is new (absent from baseline; regenerate the baseline)"
                );
            }
        }
        // Toleranced series: float quantities derived from host timing
        // (throughput, latency, speedups) can never be exact, so they
        // get a direction-aware factor band instead of equality.
        let b_s = bw.get("series").and_then(Json::as_obj).cloned().unwrap_or_default();
        let n_s = nw.get("series").and_then(Json::as_obj).cloned().unwrap_or_default();
        for (k, bv) in &b_s {
            let bv = bv.as_f64().unwrap_or(0.0);
            let Some(nv) = n_s.get(k).and_then(Json::as_f64) else {
                eprintln!("REGRESSION {name}.{k}: series missing from {}", paths[1]);
                regressions += 1;
                continue;
            };
            let higher_better = k.ends_with("_rps") || k.ends_with("_x");
            let (bad, bound) = if higher_better {
                (nv < bv / serve_tol, bv / serve_tol)
            } else {
                (nv > bv * serve_tol, bv * serve_tol)
            };
            if bad {
                let dir = if higher_better { "<" } else { ">" };
                eprintln!(
                    "REGRESSION {name}.{k}: series {nv:.3} {dir} {bound:.3} (base {bv:.3} tol x{serve_tol})"
                );
                regressions += 1;
            } else {
                println!("ok {name}.{k}: series {nv:.3} (base {bv:.3}, tol x{serve_tol})");
            }
        }
    }
    if regressions > 0 {
        eprintln!("nsc_perf: {regressions} regression(s) vs {}", paths[0]);
        1
    } else {
        println!("nsc_perf: no regressions vs {}", paths[0]);
        0
    }
}
