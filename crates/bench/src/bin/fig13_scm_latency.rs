//! Figure 13: sensitivity to the SE_L3 -> SCM issue latency (1/4/16
//! cycles), normalized to NS at 1-cycle latency. Paper shape: irregular
//! workloads are insensitive (scalar PE handles them); SIMD-heavy affine
//! workloads degrade, ~11% drop for NS-decouple at 16 cycles vs 4.

use near_stream::ExecMode;
use nsc_bench::{geomean, parse_size, prepare, system_for, Report};
use nsc_workloads::all;

fn main() {
    let size = parse_size();
    let mut rep = Report::new("fig13_scm_latency", size);
    rep.meta("figure", "13");
    println!("# Figure 13: SCM issue latency sensitivity, size {size:?}");
    let lats = [1u64, 4, 16];
    let modes = [ExecMode::Ns, ExecMode::NsNoSync, ExecMode::NsDecouple];
    println!("{:11} | {:>7} {:>7} {:>7} (NS) | (NS-nosync) | (NS-decouple)", "workload", "1cy", "4cy", "16cy");
    let mut per: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); lats.len()]; modes.len()];
    for w in all(size) {
        let p = prepare(w);
        let mut row = format!("{:11}", p.workload.name);
        // Reference: NS at 1 cycle.
        let mut cfg0 = system_for(size);
        cfg0.se.scm_issue_latency = 1;
        let (refr, _) = p.run_unchecked(ExecMode::Ns, &cfg0);
        for (mi, m) in modes.iter().enumerate() {
            for (li, lat) in lats.iter().enumerate() {
                let mut cfg = system_for(size);
                cfg.se.scm_issue_latency = *lat;
                let (r, _) = p.run_unchecked(*m, &cfg);
                let rel = refr.cycles as f64 / r.cycles.max(1) as f64;
                per[mi][li].push(rel);
                rep.stat(
                    &format!("relative.{}.{}.{lat}cy", p.workload.name, m.label()),
                    rel,
                );
                row.push_str(&format!(" {:6.2}", rel));
            }
            row.push_str(" |");
        }
        println!("{row}");
    }
    for (mi, m) in modes.iter().enumerate() {
        for (li, lat) in lats.iter().enumerate() {
            rep.stat(&format!("geomean.{}.{lat}cy", m.label()), geomean(&per[mi][li]));
        }
        let g: Vec<String> = per[mi].iter().map(|v| format!("{:5.2}", geomean(v))).collect();
        println!("geomean {:12} 1/4/16cy: {}", m.label(), g.join(" "));
    }
    rep.finish().expect("write results json");
}
