//! Figure 13: sensitivity to the SE_L3 -> SCM issue latency (1/4/16
//! cycles), normalized to NS at 1-cycle latency. Paper shape: irregular
//! workloads are insensitive (scalar PE handles them); SIMD-heavy affine
//! workloads degrade, ~11% drop for NS-decouple at 16 cycles vs 4.

use near_stream::{ExecMode, RunResult};
use nsc_bench::{finalize, geomean, Cli, prepare, system_for, Report, SweepTask};
use nsc_workloads::all;
use std::sync::Arc;

fn main() {
    let size = Cli::new("fig13_scm_latency", "Figure 13: sensitivity to the SE_L3->SCM issue latency").parse().size;
    let mut rep = Report::new("fig13_scm_latency", size);
    rep.meta("figure", "13");
    let lats = [1u64, 4, 16];
    let modes = [ExecMode::Ns, ExecMode::NsNoSync, ExecMode::NsDecouple];
    let preps: Vec<Arc<_>> = all(size).into_iter().map(|w| Arc::new(prepare(w))).collect();
    let mut tasks: Vec<SweepTask<RunResult>> = Vec::new();
    for p in &preps {
        // Reference: NS at 1 cycle, then every (mode, latency) cell.
        for (m, lat) in std::iter::once((ExecMode::Ns, 1u64))
            .chain(modes.iter().flat_map(|m| lats.iter().map(|l| (*m, *l))))
        {
            let p = Arc::clone(p);
            let mut cfg = system_for(size);
            cfg.se.scm_issue_latency = lat;
            tasks.push(Box::new(move || p.run_cached(m, &cfg)));
        }
    }
    let mut results = rep.sweep(tasks).into_iter();
    println!("# Figure 13: SCM issue latency sensitivity, size {size:?}");
    println!("{:11} | {:>7} {:>7} {:>7} (NS) | (NS-nosync) | (NS-decouple)", "workload", "1cy", "4cy", "16cy");
    let mut per: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); lats.len()]; modes.len()];
    for p in &preps {
        let mut row = format!("{:11}", p.workload.name);
        let refr = results.next().expect("one result per task");
        for (mi, m) in modes.iter().enumerate() {
            for (li, lat) in lats.iter().enumerate() {
                let r = results.next().expect("one result per task");
                let rel = refr.cycles as f64 / r.cycles.max(1) as f64;
                per[mi][li].push(rel);
                rep.stat(
                    &format!("relative.{}.{}.{lat}cy", p.workload.name, m.label()),
                    rel,
                );
                row.push_str(&format!(" {:6.2}", rel));
            }
            row.push_str(" |");
        }
        println!("{row}");
    }
    for (mi, m) in modes.iter().enumerate() {
        for (li, lat) in lats.iter().enumerate() {
            rep.stat(&format!("geomean.{}.{lat}cy", m.label()), geomean(&per[mi][li]));
        }
        let g: Vec<String> = per[mi].iter().map(|v| format!("{:5.2}", geomean(v))).collect();
        println!("geomean {:12} 1/4/16cy: {}", m.label(), g.join(" "));
    }
    finalize(rep);
}
