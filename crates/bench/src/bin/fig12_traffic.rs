//! Figure 12: NoC traffic breakdown (data / control / offloaded) per
//! workload and scheme, normalized to Base.
//!
//! Paper shape targets: NS reduces total traffic by ~69%, NS-decouple by
//! ~76%, INST by ~49% (with INST 3-5x higher than NS on affine
//! workloads); range-synchronization ≈ 11% of NS's traffic.

use near_stream::{ExecMode, RunResult};
use nsc_bench::{finalize, Cli, prepare, system_for, Report, SweepTask};
use nsc_workloads::all;
use std::sync::Arc;

fn main() {
    let size = Cli::new("fig12_traffic", "Figure 12: NoC traffic breakdown per workload and scheme").parse().size;
    let cfg = system_for(size);
    let mut rep = Report::new("fig12_traffic", size);
    rep.meta("figure", "12");
    let modes = [
        ExecMode::Base,
        ExecMode::Inst,
        ExecMode::Single,
        ExecMode::Ns,
        ExecMode::NsDecouple,
    ];
    let preps: Vec<Arc<_>> = all(size).into_iter().map(|w| Arc::new(prepare(w))).collect();
    let mut tasks: Vec<SweepTask<RunResult>> = Vec::new();
    for p in &preps {
        for m in modes {
            let p = Arc::clone(p);
            let cfg = cfg.clone();
            tasks.push(Box::new(move || p.run_cached(m, &cfg)));
        }
    }
    let mut results = rep.sweep(tasks).into_iter();
    println!("# Figure 12: traffic breakdown (bytes x hops), normalized to Base, size {size:?}");
    println!(
        "{:11} {:>12} | {}",
        "workload",
        "Base(BxH)",
        modes
            .iter()
            .map(|m| format!("{:>24}", format!("{} d/c/o", m.label())))
            .collect::<Vec<_>>()
            .join(" | ")
    );
    let mut totals = vec![0u64; modes.len()];
    let mut base_total = 0u64;
    for p in &preps {
        let mut cells = Vec::new();
        let mut base = 1.0;
        for (i, m) in modes.iter().enumerate() {
            let r = results.next().expect("one result per task");
            if i == 0 {
                base = r.traffic.total().max(1) as f64;
                base_total += r.traffic.total();
            }
            totals[i] += r.traffic.total();
            rep.run(p.workload.name, m.label(), &r);
            cells.push(format!(
                "{:>24}",
                format!(
                    "{:5.2} {:4.2}/{:4.2}/{:4.2}",
                    r.traffic.total() as f64 / base,
                    r.traffic.data as f64 / base,
                    r.traffic.control as f64 / base,
                    r.traffic.offloaded as f64 / base,
                )
            ));
        }
        println!("{:11} {:>12} | {}", p.workload.name, base as u64, cells.join(" | "));
    }
    println!();
    println!("total traffic reduction vs Base:");
    for (i, m) in modes.iter().enumerate().skip(1) {
        let red = 1.0 - totals[i] as f64 / base_total.max(1) as f64;
        rep.stat(&format!("traffic_reduction.{}", m.label()), red);
        println!("  {:12} {:5.1}%", m.label(), 100.0 * red);
    }
    finalize(rep);
}
