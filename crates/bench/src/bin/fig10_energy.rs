//! Figure 10: normalized energy vs performance across core types.
//!
//! For IO4 / OOO4 / OOO8 cores, runs Base, NS and NS-decouple and reports
//! the speedup and energy-efficiency gain. Paper shape targets: similar
//! speedups on all core types with in-order cores benefiting most
//! (NS ≈ 4.28x over IO4); NS / NS-decouple reach ≈ 2.85x / 3.52x energy
//! efficiency on OOO8.

use near_stream::{CoreModel, ExecMode, RunResult};
use nsc_bench::{finalize, fmt_x, geomean, Cli, prepare, system_for, Report, SweepTask};
use nsc_energy::EnergyModel;
use nsc_workloads::all;
use std::sync::Arc;

fn main() {
    let size = Cli::new("fig10_energy", "Figure 10: normalized energy vs performance across core types").parse().size;
    let energy = EnergyModel::mcpat_22nm();
    let mut rep = Report::new("fig10_energy", size);
    rep.meta("figure", "10");
    let preps: Vec<Arc<_>> = all(size).into_iter().map(|w| Arc::new(prepare(w))).collect();
    let modes = [ExecMode::Base, ExecMode::Ns, ExecMode::NsDecouple];
    let mut tasks: Vec<SweepTask<RunResult>> = Vec::new();
    for core in CoreModel::all() {
        let cfg = system_for(size).with_core(core);
        for p in &preps {
            for m in modes {
                let p = Arc::clone(p);
                let cfg = cfg.clone();
                tasks.push(Box::new(move || p.run_cached(m, &cfg)));
            }
        }
    }
    let mut results = rep.sweep(tasks).into_iter();
    println!("# Figure 10: energy/performance per core type, size {size:?}");
    println!(
        "{:6} {:12} {:>10} {:>10} {:>12} {:>12}",
        "core", "system", "speedup", "energy", "perf (gm)", "eff (gm)"
    );
    for core in CoreModel::all() {
        let n_tiles = system_for(size).with_core(core).mesh.tiles() as u32;
        let mut speedups_ns = Vec::new();
        let mut speedups_dec = Vec::new();
        let mut eff_ns = Vec::new();
        let mut eff_dec = Vec::new();
        for p in &preps {
            let base = results.next().expect("one result per task");
            let ns = results.next().expect("one result per task");
            let dec = results.next().expect("one result per task");
            let e_base = energy.evaluate(&base, &core, n_tiles);
            let e_ns = energy.evaluate(&ns, &core, n_tiles);
            let e_dec = energy.evaluate(&dec, &core, n_tiles);
            speedups_ns.push(ns.speedup_over(&base));
            speedups_dec.push(dec.speedup_over(&base));
            eff_ns.push(e_ns.efficiency_gain_over(&e_base));
            eff_dec.push(e_dec.efficiency_gain_over(&e_base));
            let wname = p.workload.name;
            rep.stat(&format!("speedup.{}.{wname}.NS", core.name), ns.speedup_over(&base));
            rep.stat(
                &format!("speedup.{}.{wname}.NS-decouple", core.name),
                dec.speedup_over(&base),
            );
            rep.stat(
                &format!("efficiency.{}.{wname}.NS", core.name),
                e_ns.efficiency_gain_over(&e_base),
            );
            rep.stat(
                &format!("efficiency.{}.{wname}.NS-decouple", core.name),
                e_dec.efficiency_gain_over(&e_base),
            );
        }
        rep.stat(&format!("geomean.speedup.{}.NS", core.name), geomean(&speedups_ns));
        rep.stat(&format!("geomean.speedup.{}.NS-decouple", core.name), geomean(&speedups_dec));
        rep.stat(&format!("geomean.efficiency.{}.NS", core.name), geomean(&eff_ns));
        rep.stat(&format!("geomean.efficiency.{}.NS-decouple", core.name), geomean(&eff_dec));
        println!(
            "{:6} {:12} {:>10} {:>10} {:>12} {:>12}",
            core.name,
            "NS",
            "",
            "",
            fmt_x(geomean(&speedups_ns)),
            fmt_x(geomean(&eff_ns)),
        );
        println!(
            "{:6} {:12} {:>10} {:>10} {:>12} {:>12}",
            core.name,
            "NS-decouple",
            "",
            "",
            fmt_x(geomean(&speedups_dec)),
            fmt_x(geomean(&eff_dec)),
        );
    }
    finalize(rep);
}
