//! Figure 16: exclusive vs multi-reader/single-writer lock on the atomic
//! graph workloads. Paper shape: MRSW eliminates ~97% of contention for
//! bfs_push and sssp (~1.29x under NS); pr_push always modifies, so no
//! benefit; sync-free modes see little difference.

use near_stream::{ExecMode, RunResult};
use nsc_bench::{finalize, Cli, prepare, system_for, Report, SweepTask};
use nsc_workloads::{bfs_push, pr_push, sssp};
use std::sync::Arc;

fn main() {
    let size = Cli::new("fig16_lock_type", "Figure 16: exclusive vs MRSW locks on atomic graph workloads").parse().size;
    let mut rep = Report::new("fig16_lock_type", size);
    rep.meta("figure", "16");
    let modes = [ExecMode::Ns, ExecMode::NsNoSync, ExecMode::NsDecouple];
    let preps: Vec<Arc<_>> = [bfs_push(size), pr_push(size), sssp(size)]
        .into_iter()
        .map(|w| Arc::new(prepare(w)))
        .collect();
    let mut tasks: Vec<SweepTask<RunResult>> = Vec::new();
    for p in &preps {
        for mode in modes {
            for mrsw in [false, true] {
                let p = Arc::clone(p);
                let mut cfg = system_for(size);
                cfg.mem.mrsw_lock = mrsw;
                tasks.push(Box::new(move || p.run_cached(mode, &cfg)));
            }
        }
    }
    let mut results = rep.sweep(tasks).into_iter();
    println!("# Figure 16: lock type (exclusive vs MRSW), size {size:?}");
    println!(
        "{:9} {:12} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "workload", "mode", "excl(cyc)", "mrsw(cyc)", "speedup", "conflicts-x", "conflicts-m"
    );
    for p in &preps {
        for mode in modes {
            let rx = results.next().expect("one result per task");
            let rm = results.next().expect("one result per task");
            let wname = p.workload.name;
            rep.stat(
                &format!("speedup.{wname}.{}", mode.label()),
                rx.cycles as f64 / rm.cycles.max(1) as f64,
            );
            rep.stat(&format!("conflicts.excl.{wname}.{}", mode.label()), rx.lock_conflicts as f64);
            rep.stat(&format!("conflicts.mrsw.{wname}.{}", mode.label()), rm.lock_conflicts as f64);
            println!(
                "{:9} {:12} {:>10} {:>10} {:>8.2}x {:>12} {:>12}",
                p.workload.name,
                mode.label(),
                rx.cycles,
                rm.cycles,
                rx.cycles as f64 / rm.cycles.max(1) as f64,
                rx.lock_conflicts,
                rm.lock_conflicts,
            );
        }
    }
    finalize(rep);
}
