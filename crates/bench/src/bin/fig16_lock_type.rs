//! Figure 16: exclusive vs multi-reader/single-writer lock on the atomic
//! graph workloads. Paper shape: MRSW eliminates ~97% of contention for
//! bfs_push and sssp (~1.29x under NS); pr_push always modifies, so no
//! benefit; sync-free modes see little difference.

use near_stream::ExecMode;
use nsc_bench::{parse_size, prepare, system_for, Report};
use nsc_workloads::{bfs_push, pr_push, sssp};

fn main() {
    let size = parse_size();
    let mut rep = Report::new("fig16_lock_type", size);
    rep.meta("figure", "16");
    println!("# Figure 16: lock type (exclusive vs MRSW), size {size:?}");
    println!(
        "{:9} {:12} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "workload", "mode", "excl(cyc)", "mrsw(cyc)", "speedup", "conflicts-x", "conflicts-m"
    );
    for mk in [bfs_push, pr_push, sssp] {
        for mode in [ExecMode::Ns, ExecMode::NsNoSync, ExecMode::NsDecouple] {
            let p = prepare(mk(size));
            let mut cfg_x = system_for(size);
            cfg_x.mem.mrsw_lock = false;
            let (rx, _) = p.run_unchecked(mode, &cfg_x);
            let mut cfg_m = system_for(size);
            cfg_m.mem.mrsw_lock = true;
            let (rm, _) = p.run_unchecked(mode, &cfg_m);
            let wname = p.workload.name;
            rep.stat(
                &format!("speedup.{wname}.{}", mode.label()),
                rx.cycles as f64 / rm.cycles.max(1) as f64,
            );
            rep.stat(&format!("conflicts.excl.{wname}.{}", mode.label()), rx.lock_conflicts as f64);
            rep.stat(&format!("conflicts.mrsw.{wname}.{}", mode.label()), rm.lock_conflicts as f64);
            println!(
                "{:9} {:12} {:>10} {:>10} {:>8.2}x {:>12} {:>12}",
                p.workload.name,
                mode.label(),
                rx.cycles,
                rm.cycles,
                rx.cycles as f64 / rm.cycles.max(1) as f64,
                rx.lock_conflicts,
                rm.lock_conflicts,
            );
        }
    }
    rep.finish().expect("write results json");
}
