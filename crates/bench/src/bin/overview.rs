//! Overview harness: every workload under every system, with speedups,
//! traffic and offload fractions — a one-screen summary of the whole
//! evaluation (combines the axes of Figures 9, 11 and 12).

use near_stream::{run, ExecMode};
use nsc_compiler::compile;
use nsc_workloads::{all, Size};
use std::time::Instant;

fn main() {
    let cfg = nsc_bench::system_for(Size::Small);
    let mut rep = nsc_bench::Report::new("overview", nsc_bench::parse_size());
    rep.meta("summary", "all workloads under all systems");
    println!("{:11} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}  traffic: base NS NSdec  offl",
        "workload", "Base", "INST", "SINGLE", "NScore", "NSnoc", "NS", "NSnosy", "NSdec");
    for w in all(nsc_bench::parse_size()) {
        let compiled = compile(&w.program);
        let golden = w.golden_digest();
        let t0 = Instant::now();
        let mut cells = Vec::new();
        let mut traffic = Vec::new();
        let mut offl = 0.0;
        let mut base_cycles = 0;
        for mode in ExecMode::ALL {
            let (r, mem) = run(&w.program, &compiled, &w.params, mode, &cfg, &w.init);
            let d = w.digest(&mem);
            rep.run(w.name, mode.label(), &r);
            if d != golden { eprintln!("!! {} {:?} WRONG RESULT", w.name, mode); }
            if mode == ExecMode::Base { base_cycles = r.cycles; }
            cells.push(if mode == ExecMode::Base { format!("{:9}", r.cycles) }
                       else { format!("{:7.2}", base_cycles as f64 / r.cycles as f64) });
            if matches!(mode, ExecMode::Base | ExecMode::Ns | ExecMode::NsDecouple) {
                traffic.push(r.traffic.total());
            }
            if mode == ExecMode::Ns { offl = r.offload_fraction(); }
        }
        println!("{:11} {}  {:>10} {:>10} {:>10}  {:.2} ({:?})",
            w.name, cells.join(" "), traffic[0], traffic[1], traffic[2], offl, t0.elapsed());
    }
    rep.finish().expect("write results json");
}
