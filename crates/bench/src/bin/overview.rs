//! Overview harness: every workload under every system, with speedups,
//! traffic and offload fractions — a one-screen summary of the whole
//! evaluation (combines the axes of Figures 9, 11 and 12).

use near_stream::{ExecMode, RunResult};
use nsc_bench::{finalize, prepare, system_for, Cli, Report, SweepTask};
use nsc_workloads::{all, Size};
use std::sync::Arc;

fn main() {
    let size = Cli::new("overview", "Every workload under every system, one screen").parse().size;
    let cfg = system_for(Size::Small);
    let mut rep = Report::new("overview", size);
    rep.meta("summary", "all workloads under all systems");
    let preps: Vec<Arc<_>> = all(size).into_iter().map(|w| Arc::new(prepare(w))).collect();
    let mut tasks: Vec<SweepTask<(RunResult, bool)>> = Vec::new();
    for p in &preps {
        for mode in ExecMode::ALL {
            let p = Arc::clone(p);
            let cfg = cfg.clone();
            tasks.push(Box::new(move || {
                let (r, mem) = p.run_unchecked(mode, &cfg);
                let correct = p.workload.digest(&mem) == p.workload.golden_digest();
                (r, correct)
            }));
        }
    }
    let mut results = rep.sweep(tasks).into_iter();
    println!("{:11} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}  traffic: base NS NSdec  offl",
        "workload", "Base", "INST", "SINGLE", "NScore", "NSnoc", "NS", "NSnosy", "NSdec");
    for p in &preps {
        let w = &p.workload;
        let mut cells = Vec::new();
        let mut traffic = Vec::new();
        let mut offl = 0.0;
        let mut base_cycles = 0;
        for mode in ExecMode::ALL {
            let (r, correct) = results.next().expect("one result per task");
            rep.run(w.name, mode.label(), &r);
            if !correct { eprintln!("!! {} {:?} WRONG RESULT", w.name, mode); }
            if mode == ExecMode::Base { base_cycles = r.cycles; }
            cells.push(if mode == ExecMode::Base { format!("{:9}", r.cycles) }
                       else { format!("{:7.2}", base_cycles as f64 / r.cycles as f64) });
            if matches!(mode, ExecMode::Base | ExecMode::Ns | ExecMode::NsDecouple) {
                traffic.push(r.traffic.total());
            }
            if mode == ExecMode::Ns { offl = r.offload_fraction(); }
        }
        println!("{:11} {}  {:>10} {:>10} {:>10}  {:.2}",
            w.name, cells.join(" "), traffic[0], traffic[1], traffic[2], offl);
    }
    finalize(rep);
}
