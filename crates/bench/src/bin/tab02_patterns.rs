//! Table II: address x compute pattern support of the near-data systems,
//! derived from the implemented offload policies (not hand-written):
//! each cell shows how the system executes that (pattern, compute) pair.
//!
//! F = full/autonomous near-data support, p = partial (iteration-level,
//! high overhead), - = unsupported (falls back to prefetch/core).

use near_stream::{offload_style, ExecMode, OffloadStyle, PolicyContext, SeConfig};
use nsc_bench::{finalize, Cli, Report};
use nsc_workloads::Size;
use nsc_ir::program::{ArrayId, StmtId};
use nsc_ir::stream::{AddrPatternClass, ComputeClass, StreamId, StreamInfo};

fn probe(mode: ExecMode, pattern: AddrPatternClass, role: ComputeClass, deps: usize) -> char {
    let s = StreamInfo {
        id: StreamId(2),
        stmt: StmtId(0),
        array: ArrayId(0),
        pattern,
        role,
        value_deps: (0..deps).map(|i| StreamId(i as u8 + 3)).collect(),
        elem_bytes: 8,
        compute_uops: 2,
        needs_scm: false,
        result_bytes: if role == ComputeClass::Load { 8 } else { 0 },
        loop_depth: 1,
        conditional: false,
    };
    let ctx = PolicyContext {
        l2_bytes: 256 * 1024,
        footprint_bytes: 1 << 26,
        stream_len: 1 << 20,
        n_banks: 64,
        aliased_before: false,
        offloadable: true,
    };
    match offload_style(mode, &s, &ctx, &SeConfig::paper_default()) {
        OffloadStyle::NearStream | OffloadStyle::ChainedLine | OffloadStyle::FloatLoad => 'F',
        OffloadStyle::PerIteration => 'p',
        _ => '-',
    }
}

fn main() {
    Cli::new("tab02_patterns", "Table II: pattern x compute support matrix").parse();
    let patterns = [
        ("affine", AddrPatternClass::Affine { stride_bytes: 8 }, 0usize),
        ("indirect", AddrPatternClass::Indirect { base: StreamId(1) }, 0),
        ("ptr-chase", AddrPatternClass::PointerChase, 0),
        ("multi-op", AddrPatternClass::Affine { stride_bytes: 8 }, 2),
    ];
    let roles = [
        ComputeClass::Load,
        ComputeClass::Store,
        ComputeClass::Rmw,
        ComputeClass::Reduce,
    ];
    let systems = [ExecMode::Inst, ExecMode::Single, ExecMode::Ns];
    let mut rep = Report::new("tab02_patterns", Size::Paper);
    rep.meta("table", "II");
    println!("# Table II: pattern support (derived from the implemented policies)");
    println!("{:8} | {:>10} {:>10} {:>10}", "", "INST", "SINGLE", "NS");
    let mut ns_full = 0;
    for (pname, pat, deps) in patterns {
        for role in roles {
            let cells: Vec<String> = systems
                .iter()
                .map(|m| format!("{:>10}", probe(*m, pat, role, deps)))
                .collect();
            if probe(ExecMode::Ns, pat, role, deps) == 'F' {
                ns_full += 1;
            }
            for (m, c) in systems.iter().zip(&cells) {
                rep.meta(&format!("cell.{pname}.{}.{}", role.label(), m.label()), c.trim());
            }
            println!("{:8} {:7} | {}", pname, role.label(), cells.join(" "));
        }
    }
    println!();
    println!("NS supports {ns_full}/16 pattern cells fully (paper Table I: 16/16)");
    assert_eq!(ns_full, 16, "near-stream must cover the full taxonomy");
    rep.stat("ns_full_cells", ns_full as f64);
    finalize(rep);
}
