//! Figure 11: generality of stream-based offloading — the fraction of
//! computing µops associated with streams, and the fraction actually
//! offloaded at runtime (paper: on average 93% of the possible operations
//! are offloaded; short reductions with private-cache reuse stay in-core).

use near_stream::{ExecMode, RunResult};
use nsc_bench::{finalize, Cli, prepare, system_for, Report, SweepTask};
use nsc_workloads::all;
use std::sync::Arc;

fn main() {
    let size = Cli::new("fig11_generality", "Figure 11: stream-associated and offloaded compute fractions").parse().size;
    let cfg = system_for(size);
    let mut rep = Report::new("fig11_generality", size);
    rep.meta("figure", "11");
    let preps: Vec<Arc<_>> = all(size).into_iter().map(|w| Arc::new(prepare(w))).collect();
    let tasks: Vec<SweepTask<RunResult>> = preps
        .iter()
        .map(|p| {
            let p = Arc::clone(p);
            let cfg = cfg.clone();
            Box::new(move || p.run_cached(ExecMode::Ns, &cfg)) as SweepTask<RunResult>
        })
        .collect();
    let results = rep.sweep(tasks);
    println!("# Figure 11: stream association vs runtime offload, size {size:?}");
    println!(
        "{:11} {:>12} {:>12} {:>10}",
        "workload", "assoc uops%", "offloaded%", "of-assoc%"
    );
    let mut fr = Vec::new();
    for (p, r) in preps.iter().zip(&results) {
        let assoc: f64 = r.roles.assoc.iter().sum();
        let off: f64 = r.roles.offloaded.iter().sum();
        let of_assoc = if assoc > 0.0 { off / assoc } else { 0.0 };
        fr.push(of_assoc);
        rep.run(p.workload.name, ExecMode::Ns.label(), r);
        rep.stat(&format!("offload_fraction.{}", p.workload.name), of_assoc);
        println!(
            "{:11} {:>11.1}% {:>11.1}% {:>9.1}%",
            p.workload.name,
            100.0 * assoc / r.total_uops.max(1.0),
            100.0 * off / r.total_uops.max(1.0),
            100.0 * of_assoc,
        );
    }
    let avg = fr.iter().sum::<f64>() / fr.len() as f64;
    rep.stat("offload_fraction.average", avg);
    println!("{:11} {:>36.1}%  (paper: ~93%)", "average", 100.0 * avg);
    finalize(rep);
}
