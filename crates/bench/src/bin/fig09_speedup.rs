//! Figure 9: overall speedup over the baseline OOO8 core.
//!
//! Reproduces the paper's headline comparison: INST (Omni-Compute-like),
//! SINGLE (Livia-like), NS-core (SSP-like), NS-nocomp (Stream Floating),
//! NS (near-stream computing with range-sync), NS-nosync and NS-decouple
//! (programmer-exposed sync-free optimizations), as speedups over Base.
//!
//! Paper shape targets: NS ≈ 3.19x geomean, NS-decouple ≈ 4.27x,
//! NS ≥ INST everywhere, NS-decouple ≥ SINGLE everywhere.

use near_stream::ExecMode;
use nsc_bench::{fmt_x, geomean, parse_size, prepare, system_for};
use nsc_workloads::all;

fn main() {
    let size = parse_size();
    let cfg = system_for(size);
    let modes = [
        ExecMode::Inst,
        ExecMode::Single,
        ExecMode::NsCore,
        ExecMode::NsNoComp,
        ExecMode::Ns,
        ExecMode::NsNoSync,
        ExecMode::NsDecouple,
    ];
    println!("# Figure 9: speedup over Base (OOO8), size {size:?}");
    print!("{:11} {:>10}", "workload", "Base(cyc)");
    for m in modes {
        print!(" {:>11}", m.label());
    }
    println!();
    let mut per_mode: Vec<Vec<f64>> = vec![Vec::new(); modes.len()];
    for w in all(size) {
        let p = prepare(w);
        let (base, _) = p.run_unchecked(ExecMode::Base, &cfg);
        print!("{:11} {:>10}", p.workload.name, base.cycles);
        for (i, m) in modes.iter().enumerate() {
            let (r, _) = p.run_unchecked(*m, &cfg);
            let s = r.speedup_over(&base);
            per_mode[i].push(s);
            print!(" {:>11}", fmt_x(s));
        }
        println!();
    }
    print!("{:11} {:>10}", "geomean", "");
    for col in &per_mode {
        print!(" {:>11}", fmt_x(geomean(col)));
    }
    println!();
}
