//! Figure 9: overall speedup over the baseline OOO8 core.
//!
//! Reproduces the paper's headline comparison: INST (Omni-Compute-like),
//! SINGLE (Livia-like), NS-core (SSP-like), NS-nocomp (Stream Floating),
//! NS (near-stream computing with range-sync), NS-nosync and NS-decouple
//! (programmer-exposed sync-free optimizations), as speedups over Base.
//!
//! Paper shape targets: NS ≈ 3.19x geomean, NS-decouple ≈ 4.27x,
//! NS ≥ INST everywhere, NS-decouple ≥ SINGLE everywhere.

use near_stream::{ExecMode, RunResult};
use nsc_bench::{finalize, fmt_x, geomean, Cli, prepare, system_for, Report, SweepTask};
use nsc_workloads::all;
use std::sync::Arc;

fn main() {
    let size = Cli::new("fig09_speedup", "Figure 9: speedup over the Base OOO8 core").parse().size;
    let cfg = system_for(size);
    let mut rep = Report::new("fig09_speedup", size);
    rep.meta("figure", "9");
    let modes = [
        ExecMode::Inst,
        ExecMode::Single,
        ExecMode::NsCore,
        ExecMode::NsNoComp,
        ExecMode::Ns,
        ExecMode::NsNoSync,
        ExecMode::NsDecouple,
    ];
    let preps: Vec<Arc<_>> = all(size).into_iter().map(|w| Arc::new(prepare(w))).collect();
    let mut tasks: Vec<SweepTask<RunResult>> = Vec::new();
    for p in &preps {
        for m in std::iter::once(ExecMode::Base).chain(modes) {
            let p = Arc::clone(p);
            let cfg = cfg.clone();
            tasks.push(Box::new(move || p.run_cached(m, &cfg)));
        }
    }
    let mut results = rep.sweep(tasks).into_iter();
    println!("# Figure 9: speedup over Base (OOO8), size {size:?}");
    print!("{:11} {:>10}", "workload", "Base(cyc)");
    for m in modes {
        print!(" {:>11}", m.label());
    }
    println!();
    let mut per_mode: Vec<Vec<f64>> = vec![Vec::new(); modes.len()];
    for p in &preps {
        let base = results.next().expect("one result per task");
        rep.run(p.workload.name, ExecMode::Base.label(), &base);
        print!("{:11} {:>10}", p.workload.name, base.cycles);
        for (i, m) in modes.iter().enumerate() {
            let r = results.next().expect("one result per task");
            let s = r.speedup_over(&base);
            rep.run(p.workload.name, m.label(), &r);
            rep.stat(&format!("speedup.{}.{}", p.workload.name, m.label()), s);
            per_mode[i].push(s);
            print!(" {:>11}", fmt_x(s));
        }
        println!();
    }
    print!("{:11} {:>10}", "geomean", "");
    for (m, col) in modes.iter().zip(&per_mode) {
        rep.stat(&format!("geomean.{}", m.label()), geomean(col));
        print!(" {:>11}", fmt_x(geomean(col)));
    }
    println!();
    finalize(rep);
}
