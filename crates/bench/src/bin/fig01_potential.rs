//! Figure 1: the potential of sub-thread near-data computing.
//!
//! (a) Breakdown of dynamic µops associated with streams, by compute type
//!     (paper: ~21% load/reduce, ~31% store/RMW/atomic on average).
//! (b) Pure data traffic (bytes x hops) of three idealized systems:
//!     No-Priv$, Perf-Priv$ and Perf-Near-LLC (paper: a perfect private
//!     cache removes only ~27% of traffic; near-LLC removes ~64%).

use near_stream::ideal::{ideal_traffic, IdealModel};
use nsc_bench::{parse_size, prepare, system_for, Report};
use nsc_compiler::{op_breakdown, run_with_counts, OpBreakdown};
use nsc_ir::stream::ComputeClass;
use nsc_workloads::all;

fn main() {
    let size = parse_size();
    let cfg = system_for(size);
    let mut rep = Report::new("fig01_potential", size);
    rep.meta("figure", "1");
    println!("# Figure 1(a): dynamic uops associated with streams, size {size:?}");
    println!(
        "{:11} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}",
        "workload", "load", "store", "rmw", "atomic", "reduce", "streamed", "core"
    );
    let mut agg = OpBreakdown::default();
    let mut rows = Vec::new();
    for w in all(size) {
        let p = prepare(w);
        let mut mem = nsc_ir::Memory::for_program(&p.workload.program);
        (p.workload.init)(&mut mem);
        let counts = run_with_counts(&p.workload.program, &mut mem, &p.workload.params);
        let mut bd = OpBreakdown::default();
        for (k, c) in p.compiled.kernels.iter().zip(&counts) {
            bd.merge(&op_breakdown(k, c));
        }
        println!(
            "{:11} {:6.1}% {:6.1}% {:6.1}% {:6.1}% {:6.1}% {:7.1}% {:7.1}%",
            p.workload.name,
            100.0 * bd.fraction(ComputeClass::Load),
            100.0 * bd.fraction(ComputeClass::Store),
            100.0 * bd.fraction(ComputeClass::Rmw),
            100.0 * bd.fraction(ComputeClass::Atomic),
            100.0 * bd.fraction(ComputeClass::Reduce),
            100.0 * bd.stream_fraction(),
            100.0 * (1.0 - bd.stream_fraction()),
        );
        rep.stat(&format!("stream_fraction.{}", p.workload.name), bd.stream_fraction());
        agg.merge(&bd);
        rows.push(p);
    }
    println!(
        "{:11} {:6.1}% {:6.1}% {:6.1}% {:6.1}% {:6.1}% {:7.1}%  (paper: load+reduce ~21%, store/rmw/atomic ~31%)",
        "average",
        100.0 * agg.fraction(ComputeClass::Load),
        100.0 * agg.fraction(ComputeClass::Store),
        100.0 * agg.fraction(ComputeClass::Rmw),
        100.0 * agg.fraction(ComputeClass::Atomic),
        100.0 * agg.fraction(ComputeClass::Reduce),
        100.0 * agg.stream_fraction(),
    );

    println!();
    println!("# Figure 1(b): idealized data traffic, normalized to No-Priv$");
    println!(
        "{:11} {:>12} {:>12} {:>12}",
        "workload", "No-Priv$", "Perf-Priv$", "Perf-NearLLC"
    );
    let (mut s_no, mut s_perf, mut s_near) = (0u64, 0u64, 0u64);
    for p in &rows {
        let w = &p.workload;
        let no = ideal_traffic(&w.program, &p.compiled, &w.params, IdealModel::NoPrivateCache, &cfg, &w.init);
        let perf = ideal_traffic(&w.program, &p.compiled, &w.params, IdealModel::PerfectPrivate, &cfg, &w.init);
        let near = ideal_traffic(&w.program, &p.compiled, &w.params, IdealModel::PerfectNearLlc, &cfg, &w.init);
        s_no += no;
        s_perf += perf;
        s_near += near;
        let n = no.max(1) as f64;
        rep.stat(&format!("ideal_traffic.{}.perf_priv", w.name), perf as f64 / n);
        rep.stat(&format!("ideal_traffic.{}.perf_near_llc", w.name), near as f64 / n);
        let n = no.max(1) as f64;
        println!(
            "{:11} {:>12.2} {:>12.2} {:>12.2}",
            w.name,
            1.0,
            perf as f64 / n,
            near as f64 / n
        );
    }
    rep.stat("ideal_traffic.average.perf_priv", s_perf as f64 / s_no.max(1) as f64);
    rep.stat("ideal_traffic.average.perf_near_llc", s_near as f64 / s_no.max(1) as f64);
    rep.stat("stream_fraction.average", agg.stream_fraction());
    println!(
        "{:11} {:>12.2} {:>12.2} {:>12.2}  (paper: ~0.73 and ~0.36)",
        "average",
        1.0,
        s_perf as f64 / s_no.max(1) as f64,
        s_near as f64 / s_no.max(1) as f64
    );
    rep.finish().expect("write results json");
}
