//! Figure 1: the potential of sub-thread near-data computing.
//!
//! (a) Breakdown of dynamic µops associated with streams, by compute type
//!     (paper: ~21% load/reduce, ~31% store/RMW/atomic on average).
//! (b) Pure data traffic (bytes x hops) of three idealized systems:
//!     No-Priv$, Perf-Priv$ and Perf-Near-LLC (paper: a perfect private
//!     cache removes only ~27% of traffic; near-LLC removes ~64%).

use near_stream::ideal::{ideal_traffic, IdealModel};
use nsc_bench::{finalize, Cli, prepare, system_for, Report, SweepTask};
use nsc_compiler::{op_breakdown, run_with_counts, OpBreakdown};
use nsc_ir::stream::ComputeClass;
use nsc_workloads::all;
use std::sync::Arc;

fn main() {
    let size = Cli::new("fig01_potential", "Figure 1: potential of sub-thread near-data computing").parse().size;
    let cfg = system_for(size);
    let mut rep = Report::new("fig01_potential", size);
    rep.meta("figure", "1");
    let preps: Vec<Arc<_>> = all(size).into_iter().map(|w| Arc::new(prepare(w))).collect();

    // (a) One functional counting run per workload.
    let tasks: Vec<SweepTask<OpBreakdown>> = preps
        .iter()
        .map(|p| {
            let p = Arc::clone(p);
            Box::new(move || {
                let mut mem = nsc_ir::Memory::for_program(&p.workload.program);
                (p.workload.init)(&mut mem);
                let counts = run_with_counts(&p.workload.program, &mut mem, &p.workload.params);
                let mut bd = OpBreakdown::default();
                for (k, c) in p.compiled.kernels.iter().zip(&counts) {
                    bd.merge(&op_breakdown(k, c));
                }
                bd
            }) as SweepTask<OpBreakdown>
        })
        .collect();
    let breakdowns = rep.sweep(tasks);

    println!("# Figure 1(a): dynamic uops associated with streams, size {size:?}");
    println!(
        "{:11} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}",
        "workload", "load", "store", "rmw", "atomic", "reduce", "streamed", "core"
    );
    let mut agg = OpBreakdown::default();
    for (p, bd) in preps.iter().zip(&breakdowns) {
        println!(
            "{:11} {:6.1}% {:6.1}% {:6.1}% {:6.1}% {:6.1}% {:7.1}% {:7.1}%",
            p.workload.name,
            100.0 * bd.fraction(ComputeClass::Load),
            100.0 * bd.fraction(ComputeClass::Store),
            100.0 * bd.fraction(ComputeClass::Rmw),
            100.0 * bd.fraction(ComputeClass::Atomic),
            100.0 * bd.fraction(ComputeClass::Reduce),
            100.0 * bd.stream_fraction(),
            100.0 * (1.0 - bd.stream_fraction()),
        );
        rep.stat(&format!("stream_fraction.{}", p.workload.name), bd.stream_fraction());
        agg.merge(bd);
    }
    println!(
        "{:11} {:6.1}% {:6.1}% {:6.1}% {:6.1}% {:6.1}% {:7.1}%  (paper: load+reduce ~21%, store/rmw/atomic ~31%)",
        "average",
        100.0 * agg.fraction(ComputeClass::Load),
        100.0 * agg.fraction(ComputeClass::Store),
        100.0 * agg.fraction(ComputeClass::Rmw),
        100.0 * agg.fraction(ComputeClass::Atomic),
        100.0 * agg.fraction(ComputeClass::Reduce),
        100.0 * agg.stream_fraction(),
    );

    // (b) Three idealized traffic models per workload, one task each.
    let models = [
        IdealModel::NoPrivateCache,
        IdealModel::PerfectPrivate,
        IdealModel::PerfectNearLlc,
    ];
    let mut tasks: Vec<SweepTask<u64>> = Vec::new();
    for p in &preps {
        for model in models {
            let p = Arc::clone(p);
            let cfg = cfg.clone();
            tasks.push(Box::new(move || {
                let w = &p.workload;
                ideal_traffic(&w.program, &p.compiled, &w.params, model, &cfg, &w.init)
            }));
        }
    }
    let mut traffic = rep.sweep(tasks).into_iter();

    println!();
    println!("# Figure 1(b): idealized data traffic, normalized to No-Priv$");
    println!(
        "{:11} {:>12} {:>12} {:>12}",
        "workload", "No-Priv$", "Perf-Priv$", "Perf-NearLLC"
    );
    let (mut s_no, mut s_perf, mut s_near) = (0u64, 0u64, 0u64);
    for p in &preps {
        let w = &p.workload;
        let no = traffic.next().expect("one result per task");
        let perf = traffic.next().expect("one result per task");
        let near = traffic.next().expect("one result per task");
        s_no += no;
        s_perf += perf;
        s_near += near;
        let n = no.max(1) as f64;
        rep.stat(&format!("ideal_traffic.{}.perf_priv", w.name), perf as f64 / n);
        rep.stat(&format!("ideal_traffic.{}.perf_near_llc", w.name), near as f64 / n);
        println!(
            "{:11} {:>12.2} {:>12.2} {:>12.2}",
            w.name,
            1.0,
            perf as f64 / n,
            near as f64 / n
        );
    }
    rep.stat("ideal_traffic.average.perf_priv", s_perf as f64 / s_no.max(1) as f64);
    rep.stat("ideal_traffic.average.perf_near_llc", s_near as f64 / s_no.max(1) as f64);
    rep.stat("stream_fraction.average", agg.stream_fraction());
    println!(
        "{:11} {:>12.2} {:>12.2} {:>12.2}  (paper: ~0.73 and ~0.36)",
        "average",
        1.0,
        s_perf as f64 / s_no.max(1) as f64,
        s_near as f64 / s_no.max(1) as f64
    );
    finalize(rep);
}
