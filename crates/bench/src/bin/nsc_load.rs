//! `nsc_load` — open-loop load generator and chaos-soak harness for a
//! live `nscd` daemon.
//!
//! ```text
//! nsc_load --tiny --socket /tmp/nscd.sock --rate 300 --secs 10 --conns 4
//! ```
//!
//! Speaks the raw newline-delimited JSON protocol over Unix sockets
//! (this crate sits *below* `nsc-serve` in the dependency graph, so it
//! cannot use the daemon's own client helpers — which also keeps the
//! harness honest: it exercises the wire format, not a shared codec).
//!
//! Three phases per run:
//!
//! 1. **Cold flood** — every workload×mode key once, back to back, with
//!    a cold cache: maximal queue pressure plus cache population.
//! 2. **Steady** — open-loop Zipfian traffic at `--rate` for ¾ of
//!    `--secs`. Open-loop means send times are fixed in advance; a slow
//!    daemon does not slow the generator down, it builds queue — which
//!    is exactly the overload the daemon must shed, not absorb.
//! 3. **Burst** — the final ¼ of `--secs` at `--rate × --burst`.
//!
//! Every submitted request must come back with exactly one terminal
//! response: a result, a typed error, or a typed shed
//! (`overloaded` / `deadline_exceeded` / `shutting_down`). The harness
//! then replays retryable sheds closed-loop with bounded backoff
//! honoring the daemon's `retry_after_ms` hints — resubmitting the
//! *same* request ids, so daemon-side dedup can answer from its
//! completed store. Violations are counted and fatal:
//!
//! * `lost` — a request the daemon never answered (includes wedges:
//!   reads time out after 30s rather than hanging);
//! * `dup` — two responses for one correlation id on one connection;
//! * `mismatch` — a completed run whose result blob differs from an
//!   earlier completion of the same workload×mode key. With
//!   `NSC_FAULT_RATE` armed on the daemon this is the chaos-soak
//!   property: fault plans are derived from request content, so every
//!   completion of a key must be bit-identical.
//!
//! The report is one `key=value` line (`lost=0` is what CI greps) plus
//! latency lines with p50/p99/p999 from the shared histogram plumbing —
//! aggregate and *per phase*: steady-state and burst requests are
//! accounted separately (tagged at send time), so the burst tail cannot
//! hide inside the steady distribution or vice versa.
//!
//! `--bench-out PATH` writes an `nsc-perf-v1` summary (workload
//! `serving`, toleranced series only): aggregate throughput/p99/shed
//! rate plus `steady_*` / `burst_*` per-phase series
//! (throughput, p50, p99, p999, shed rate), so serving slowdowns fail
//! the same `nsc_perf --compare` gate as simulator regressions.
//!
//! `--sweep R1,R2,...` appends steady-only probe passes at each rate
//! (ascending) after the soak and records the **saturation knee**: the
//! first swept rate whose steady p99 exceeds `--knee-p99-us` or whose
//! shed rate exceeds `--knee-shed-pct`, or the largest swept rate when
//! none saturates. The knee lands in the bench-out series as
//! `knee_rps` — higher-is-better by suffix, so a daemon whose knee
//! moves down past the tolerance band fails the same compare gate.

use near_stream::ExecMode;
use nsc_bench::Cli;
use nsc_sim::json::{parse, Json};
use nsc_sim::rng::Rng;
use nsc_sim::stats::Histogram;
use nsc_workloads::Size;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A read stalled this long means the daemon is wedged, not slow.
const WEDGE_TIMEOUT: Duration = Duration::from_secs(30);

/// One workload×mode request template.
#[derive(Clone)]
struct Key {
    workload: String,
    mode: ExecMode,
}

/// Send-time phase tags indexing [`Acct::phases`]. A response is
/// attributed to the phase its request was *sent* in, even when it
/// lands after the phase's schedule ended — the tail of a burst is a
/// burst problem.
const PH_COLD: usize = 0;
const PH_STEADY: usize = 1;
const PH_BURST: usize = 2;
const PH_RETRY: usize = 3;
const PH_NAMES: [&str; 4] = ["cold", "steady", "burst", "retry"];

/// One phase's slice of the accounting: offered/completed/shed counts
/// plus its own latency histogram, so steady-state and burst tails are
/// reported separately instead of smeared into one distribution.
struct PhaseAcct {
    sent: u64,
    ok: u64,
    shed: u64,
    hist: Histogram,
}

impl PhaseAcct {
    fn new() -> PhaseAcct {
        PhaseAcct { sent: 0, ok: 0, shed: 0, hist: Histogram::new(1_000.0, 30_000) }
    }
}

/// Everything the reporter needs, merged across connections.
struct Acct {
    sent: u64,
    ok: u64,
    cached: u64,
    shed_overloaded: u64,
    shed_deadline: u64,
    shed_shutdown: u64,
    errors: u64,
    lost: u64,
    dup: u64,
    mismatch: u64,
    retries: u64,
    retried_ok: u64,
    /// First-seen result blob per key index; later completions must
    /// match bit for bit.
    blobs: HashMap<usize, String>,
    /// Retryable sheds to replay closed-loop: (key idx, rid, hint ms).
    retryable: Vec<(usize, u64, u64)>,
    hist: Histogram,
    /// Per-phase sub-accounting, indexed by `PH_*`.
    phases: [PhaseAcct; 4],
}

impl Acct {
    fn new() -> Acct {
        Acct {
            sent: 0,
            ok: 0,
            cached: 0,
            shed_overloaded: 0,
            shed_deadline: 0,
            shed_shutdown: 0,
            errors: 0,
            lost: 0,
            dup: 0,
            mismatch: 0,
            retries: 0,
            retried_ok: 0,
            blobs: HashMap::new(),
            retryable: Vec::new(),
            // 1ms buckets out to 30s: under saturation the reorder
            // buffer can hold deliveries behind multi-second inline
            // work, and the tail is the interesting part.
            hist: Histogram::new(1_000.0, 30_000),
            phases: [PhaseAcct::new(), PhaseAcct::new(), PhaseAcct::new(), PhaseAcct::new()],
        }
    }
}

fn size_label(size: Size) -> &'static str {
    match size {
        Size::Tiny => "tiny",
        Size::Small => "small",
        Size::Paper => "paper",
    }
}

fn json_bool(v: &Json) -> Option<bool> {
    match v {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn run_line(id: u64, rid: u64, key: &Key, size: Size, deadline_ms: u64) -> String {
    let mut line = format!(
        "{{\"op\":\"run\",\"id\":{id},\"request_id\":{rid},\"workload\":\"{}\",\"size\":\"{}\",\"mode\":\"{}\"",
        key.workload,
        size_label(size),
        key.mode.label(),
    );
    if deadline_ms > 0 {
        line.push_str(&format!(",\"deadline_ms\":{deadline_ms}"));
    }
    line.push('}');
    line
}

/// Cumulative-weight Zipfian sampler over `n` ranks (theta ≈ 0.9 is
/// the classic web-traffic skew). Pure function of the rng stream.
struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Zipf {
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(theta);
            cum.push(total);
        }
        Zipf { cum }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let x = rng.gen_f64() * self.cum.last().copied().unwrap_or(1.0);
        self.cum.partition_point(|&c| c < x).min(self.cum.len() - 1)
    }
}

/// In-flight requests: id → (key idx, send time, send-phase tag).
type Pending = HashMap<u64, (usize, Instant, usize)>;

/// Classifies one response line into the accounting, returning the key
/// index it answered (from `pending`) when it correlates.
fn absorb_response(line: &str, pending: &mut Pending, acct: &mut Acct) {
    let Ok(resp) = parse(line) else {
        acct.errors += 1;
        return;
    };
    let id = resp.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let Some((key_idx, t_sent, phase)) = pending.remove(&id) else {
        // id 0 with a shed reason is a connection-level reject; any
        // other uncorrelated line is a duplicate terminal response.
        if resp.get("shed").is_some() && id == 0 {
            acct.shed_overloaded += 1;
        } else {
            acct.dup += 1;
        }
        return;
    };
    let us = t_sent.elapsed().as_micros() as f64;
    acct.hist.record(us);
    acct.phases[phase].hist.record(us);
    if resp.get("ok").and_then(json_bool) == Some(true) {
        acct.ok += 1;
        acct.phases[phase].ok += 1;
        if resp.get("cached").and_then(json_bool) == Some(true) {
            acct.cached += 1;
        }
        if let Some(blob) = resp.get("blob").and_then(Json::as_str) {
            match acct.blobs.get(&key_idx) {
                Some(first) if first != blob => acct.mismatch += 1,
                Some(_) => {}
                None => {
                    acct.blobs.insert(key_idx, blob.to_owned());
                }
            }
        }
        return;
    }
    let rid = resp.get("request_id").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let hint = resp.get("retry_after_ms").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    match resp.get("shed").and_then(Json::as_str) {
        Some("overloaded") => {
            acct.shed_overloaded += 1;
            acct.phases[phase].shed += 1;
            acct.retryable.push((key_idx, rid, hint));
        }
        Some("shutting_down") => {
            acct.shed_shutdown += 1;
            acct.phases[phase].shed += 1;
            acct.retryable.push((key_idx, rid, hint));
        }
        Some("deadline_exceeded") => {
            acct.shed_deadline += 1;
            acct.phases[phase].shed += 1;
        }
        _ => acct.errors += 1,
    }
}

/// One open-loop pass's shape. The main soak is
/// `{cold flood, steady, burst}`; `--sweep` probe passes are
/// steady-only at one rate with the flood skipped (the soak already
/// populated the cache). `pass` is folded into every request id so
/// rids stay globally unique across passes — otherwise the daemon's
/// dedup store would replay earlier passes' results and the sweep
/// would measure nothing.
#[derive(Clone, Copy)]
struct PassCfg {
    rate: u64,
    steady_ms: u64,
    burst_ms: u64,
    burst_mult: u64,
    cold: bool,
    seed: u64,
    deadline_ms: u64,
    pass: u64,
}

/// One connection's worth of open-loop traffic: scheduled sends on this
/// thread, reads on a sibling, both feeding the shared accounting.
#[allow(clippy::too_many_arguments)]
fn drive_conn(
    socket: &Path,
    conn_idx: u64,
    conns: u64,
    keys: &[Key],
    size: Size,
    cfg: PassCfg,
    zipf: &Zipf,
    acct: &Arc<Mutex<Acct>>,
) {
    let stream = match UnixStream::connect(socket) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("nsc_load: conn {conn_idx}: connect {}: {e}", socket.display());
            return;
        }
    };
    let _ = stream.set_read_timeout(Some(WEDGE_TIMEOUT));
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // In-flight requests on this connection.
    let pending: Arc<Mutex<Pending>> = Arc::default();
    let reader = {
        let pending = Arc::clone(&pending);
        let acct = Arc::clone(acct);
        std::thread::spawn(move || {
            let mut reader = BufReader::new(read_half);
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) => break, // daemon closed: end of stream
                    Ok(_) => {
                        if line.trim().is_empty() {
                            continue;
                        }
                        let mut pend = pending.lock().unwrap();
                        let mut acct = acct.lock().unwrap();
                        absorb_response(line.trim_end(), &mut pend, &mut acct);
                    }
                    Err(_) => break, // wedge timeout or hard error
                }
            }
        })
    };

    let mut out = stream;
    let mut rng = Rng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(conn_idx)
            .wrapping_add(cfg.pass.wrapping_mul(0x85EB_CA6B)),
    );
    let mut seq = 0u64;
    let mut send = |out: &mut UnixStream, key_idx: usize, phase: usize| -> bool {
        seq += 1;
        let id = seq;
        let rid = (cfg.seed << 48) ^ (cfg.pass << 40) ^ (conn_idx << 32) ^ seq;
        let line = run_line(id, rid.max(1), &keys[key_idx], size, cfg.deadline_ms);
        pending.lock().unwrap().insert(id, (key_idx, Instant::now(), phase));
        let mut a = acct.lock().unwrap();
        a.sent += 1;
        a.phases[phase].sent += 1;
        drop(a);
        writeln!(out, "{line}").and_then(|()| out.flush()).is_ok()
    };

    // Phase 1 — cold flood: this connection's slice of the key space,
    // as fast as the socket accepts it.
    let mut alive = true;
    if cfg.cold {
        for key_idx in 0..keys.len() {
            if key_idx as u64 % conns == conn_idx {
                alive = send(&mut out, key_idx, PH_COLD);
                if !alive {
                    break;
                }
            }
        }
    }

    // Phases 2+3 — open loop: send times are fixed by the schedule, not
    // by the daemon's progress. `burst_ms == 0` makes the burst window
    // empty, so the second entry sends nothing.
    let steady = Duration::from_millis(cfg.steady_ms);
    let burst_phase = Duration::from_millis(cfg.burst_ms);
    let start = Instant::now();
    for (phase, phase_end, phase_rate) in [
        (PH_STEADY, steady, cfg.rate),
        (PH_BURST, steady + burst_phase, cfg.rate * cfg.burst_mult.max(1)),
    ] {
        if !alive {
            break;
        }
        let interval = Duration::from_micros(1_000_000 * conns / phase_rate.max(1));
        let mut next = start.max(Instant::now());
        while Instant::now() - start < phase_end {
            if !alive {
                break;
            }
            let now = Instant::now();
            if now < next {
                std::thread::sleep(next - now);
            }
            alive = send(&mut out, zipf.sample(&mut rng), phase);
            next += interval;
        }
    }

    // Half-close: the daemon sees EOF, finishes delivering everything
    // admitted on this connection, then closes — the reader drains to
    // EOF and whatever is still pending afterwards was lost.
    let _ = out.shutdown(Shutdown::Write);
    let _ = reader.join();
    let stranded = pending.lock().unwrap().len() as u64;
    acct.lock().unwrap().lost += stranded;
}

/// Closed-loop replay of retryable sheds: same rids, bounded attempts,
/// backoff honoring the sheds' `retry_after_ms` hints. A rid whose
/// original submission actually completed comes back deduped — that is
/// the daemon-side idempotency the soak leans on.
fn retry_pass(
    socket: &Path,
    keys: &[Key],
    size: Size,
    deadline_ms: u64,
    max_retries: u64,
    acct: &mut Acct,
) {
    let mut work: Vec<(usize, u64, u64)> = std::mem::take(&mut acct.retryable);
    for attempt in 0..max_retries {
        if work.is_empty() {
            break;
        }
        let hint = work.iter().map(|&(_, _, h)| h).max().unwrap_or(0);
        let backoff = hint.max(20 << attempt).min(2_000);
        std::thread::sleep(Duration::from_millis(backoff));
        let Ok(mut stream) = UnixStream::connect(socket) else { break };
        let _ = stream.set_read_timeout(Some(WEDGE_TIMEOUT));
        let mut pending: Pending = HashMap::new();
        let mut payload = String::new();
        for (i, &(key_idx, rid, _)) in work.iter().enumerate() {
            let id = i as u64 + 1;
            payload.push_str(&run_line(id, rid, &keys[key_idx], size, deadline_ms));
            payload.push('\n');
            pending.insert(id, (key_idx, Instant::now(), PH_RETRY));
        }
        acct.retries += work.len() as u64;
        if stream
            .write_all(payload.as_bytes())
            .and_then(|()| stream.shutdown(Shutdown::Write))
            .is_err()
        {
            break;
        }
        let before_ok = acct.ok;
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { break };
            if !line.trim().is_empty() {
                absorb_response(line.trim_end(), &mut pending, acct);
            }
        }
        acct.retried_ok += acct.ok - before_ok;
        work = std::mem::take(&mut acct.retryable);
    }
    // Whatever is still retryable after the budget keeps its typed shed
    // as the terminal response — reported, not lost.
    acct.retryable = work;
}

/// Writes an `nsc-perf-v1`-compatible summary so serving performance
/// rides the same regression gate as the simulator: one workload
/// (`serving`) with no exact counters (nothing here is deterministic)
/// and a toleranced `series` — keys ending `_rps` are higher-is-better
/// by suffix, everything else lower-is-better. The aggregate
/// throughput/p99/shed-rate keys are joined by `steady_*` / `burst_*`
/// per-phase series and, when a sweep ran, the `knee_rps` saturation
/// knee. Compare against a committed baseline with
/// `nsc_perf --compare results/BENCH_serving_baseline.json <PATH>`.
///
/// Shed-rate series are floored at 0.005: a zero-shed baseline would
/// make the lower-is-better tolerance band zero-width (`0 * tol = 0`),
/// failing the gate on the first stray shed of any later run.
fn write_bench_out(
    path: &str,
    size: Size,
    wall: Duration,
    throughput_rps: f64,
    acct: &Acct,
    phase_ms: [u64; 2],
    knee_rps: Option<f64>,
) {
    use nsc_sim::json::fmt_f64;
    let sheds = acct.shed_overloaded + acct.shed_deadline + acct.shed_shutdown;
    let shed_rate = sheds as f64 / (acct.sent as f64).max(1.0);
    let p99_us = acct.hist.percentile_opt(99.0).unwrap_or(0.0);
    let r3 = |v: f64| (v * 1e3).round() / 1e3;
    let floor = |v: f64| v.max(0.005);
    let mut series: Vec<(String, f64)> = vec![
        ("throughput_rps".to_owned(), r3(throughput_rps)),
        ("p99_us".to_owned(), r3(p99_us)),
        ("shed_rate".to_owned(), r3(floor(shed_rate))),
    ];
    for (phase, ms) in [(PH_STEADY, phase_ms[0]), (PH_BURST, phase_ms[1])] {
        let pa = &acct.phases[phase];
        let name = PH_NAMES[phase];
        let p = |q: f64| pa.hist.percentile_opt(q).unwrap_or(0.0);
        let secs = (ms as f64 / 1e3).max(1e-9);
        series.push((format!("{name}_throughput_rps"), r3(pa.ok as f64 / secs)));
        series.push((format!("{name}_p50_us"), r3(p(50.0))));
        series.push((format!("{name}_p99_us"), r3(p(99.0))));
        series.push((format!("{name}_p999_us"), r3(p(99.9))));
        series
            .push((format!("{name}_shed_rate"), r3(floor(pa.shed as f64 / (pa.sent as f64).max(1.0)))));
    }
    if let Some(knee) = knee_rps {
        series.push(("knee_rps".to_owned(), knee));
    }
    let series_json = series
        .iter()
        .map(|(k, v)| format!("\"{k}\":{}", fmt_f64(*v)))
        .collect::<Vec<_>>()
        .join(",");
    let out = format!(
        "{{\"schema\":\"nsc-perf-v1\",\"label\":\"serving\",\"size\":\"{}\",\"workloads\":{{\
         \"serving\":{{\"wall_ms\":{},\"counters\":{{}},\"series\":{{{series_json}}}}}}}}}\n",
        size_label(size),
        fmt_f64(r3(wall.as_secs_f64() * 1e3)),
    );
    std::fs::write(path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("nsc_load: wrote {path} (throughput={throughput_rps:.0} rps, p99={p99_us:.0}µs, shed_rate={shed_rate:.3})");
}

/// Runs one open-loop pass (`conns` connection threads against the
/// daemon) and returns the merged accounting plus the pass's wall time.
fn run_pass(
    socket: &Path,
    keys: &[Key],
    zipf: &Zipf,
    size: Size,
    conns: u64,
    cfg: PassCfg,
) -> (Acct, Duration) {
    let acct = Arc::new(Mutex::new(Acct::new()));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for conn_idx in 0..conns {
            let acct = Arc::clone(&acct);
            let socket = socket.to_path_buf();
            scope.spawn(move || {
                drive_conn(&socket, conn_idx, conns, keys, size, cfg, zipf, &acct);
            });
        }
    });
    let wall = t0.elapsed();
    let acct = Arc::try_unwrap(acct)
        .unwrap_or_else(|_| panic!("connection threads still hold the accounting"))
        .into_inner()
        .unwrap();
    (acct, wall)
}

fn main() {
    let args = Cli::new("nsc_load", "open-loop load generator / chaos soak for a live nscd")
        .opt("socket", "PATH", "daemon socket (default $NSCD_SOCKET or /tmp/nscd.sock)")
        .opt("rate", "N", "steady-phase offered load, requests/s (default 200)")
        .opt("secs", "N", "total open-loop duration (default 5; last quarter bursts)")
        .opt("conns", "N", "concurrent connections (default 2)")
        .opt("burst", "N", "burst-phase rate multiplier (default 4)")
        .opt("seed", "N", "rng seed for the key mix and rids (default 1)")
        .opt("zipf", "N", "Zipf theta x100 for the key mix (default 90)")
        .opt("deadline-ms", "N", "per-request deadline after the cold flood (default 0)")
        .opt("retries", "N", "closed-loop replay budget for retryable sheds (default 4)")
        .opt("bench-out", "PATH", "write an nsc-perf-v1 summary (workload \"serving\") for nsc_perf --compare")
        .opt("sweep", "R1,R2,...", "after the soak, probe each rate steady-only and record the saturation knee as knee_rps")
        .opt("sweep-secs", "N", "per-rate duration of each sweep pass (default 2)")
        .opt("knee-p99-us", "N", "sweep knee threshold on steady p99 (default 100000)")
        .opt("knee-shed-pct", "N", "sweep knee threshold on shed rate, percent (default 1)")
        .parse();
    let socket = args
        .opt("socket")
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("NSCD_SOCKET").map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("/tmp/nscd.sock"));
    let rate = args.opt_u64("rate", 200).max(1);
    let secs = args.opt_u64("secs", 5).max(1);
    let conns = args.opt_u64("conns", 2).max(1);
    let burst = args.opt_u64("burst", 4).max(1);
    let seed = args.opt_u64("seed", 1);
    let theta = args.opt_u64("zipf", 90) as f64 / 100.0;
    let deadline_ms = args.opt_u64("deadline-ms", 0);
    let max_retries = args.opt_u64("retries", 4);

    let keys: Vec<Key> = nsc_workloads::all(args.size)
        .into_iter()
        .flat_map(|w| {
            [ExecMode::Base, ExecMode::Ns]
                .into_iter()
                .map(move |mode| Key { workload: w.name.to_owned(), mode })
        })
        .collect();
    let zipf = Zipf::new(keys.len(), theta);

    eprintln!(
        "nsc_load: {} keys, {conns} conns, {rate} req/s for {}ms then x{burst} for {}ms, socket {}",
        keys.len(),
        secs * 750,
        secs * 250,
        socket.display(),
    );
    let soak_cfg = PassCfg {
        rate,
        steady_ms: secs * 750,
        burst_ms: secs * 250,
        burst_mult: burst,
        cold: true,
        seed,
        deadline_ms,
        pass: 0,
    };
    let (mut acct, open_loop_wall) = run_pass(&socket, &keys, &zipf, args.size, conns, soak_cfg);
    retry_pass(&socket, &keys, args.size, deadline_ms, max_retries, &mut acct);

    let unresolved = acct.retryable.len();
    println!(
        "nsc_load: sent={} ok={} cached={} shed.overloaded={} shed.deadline={} shed.shutdown={} \
         errors={} retries={} retried_ok={} unresolved={} lost={} dup={} mismatch={}",
        acct.sent,
        acct.ok,
        acct.cached,
        acct.shed_overloaded,
        acct.shed_deadline,
        acct.shed_shutdown,
        acct.errors,
        acct.retries,
        acct.retried_ok,
        unresolved,
        acct.lost,
        acct.dup,
        acct.mismatch,
    );
    let p = |q: f64| acct.hist.percentile_opt(q).unwrap_or(0.0);
    let throughput_rps = acct.ok as f64 / open_loop_wall.as_secs_f64().max(1e-9);
    println!(
        "nsc_load: wall={:.1}s throughput={:.0} req/s p50={:.0}µs p99={:.0}µs p999={:.0}µs keys_verified={}",
        open_loop_wall.as_secs_f64(),
        throughput_rps,
        p(50.0),
        p(99.0),
        p(99.9),
        acct.blobs.len(),
    );
    // Per-phase breakdown: steady-state vs burst, attributed at send
    // time, so the burst tail is visible on its own.
    for (phase, ms) in [(PH_STEADY, secs * 750), (PH_BURST, secs * 250)] {
        let pa = &acct.phases[phase];
        let pp = |q: f64| pa.hist.percentile_opt(q).unwrap_or(0.0);
        println!(
            "nsc_load: {}: sent={} ok={} shed={} throughput={:.0} req/s p50={:.0}µs p99={:.0}µs p999={:.0}µs shed_rate={:.3}",
            PH_NAMES[phase],
            pa.sent,
            pa.ok,
            pa.shed,
            pa.ok as f64 / (ms as f64 / 1e3).max(1e-9),
            pp(50.0),
            pp(99.0),
            pp(99.9),
            pa.shed as f64 / (pa.sent as f64).max(1.0),
        );
    }

    // Saturation sweep: steady-only probe passes at each requested rate
    // (ascending), knee = the first rate that saturates by p99 or shed
    // rate — or the largest swept rate when none does.
    let mut knee_rps = None;
    if let Some(spec) = args.opt("sweep") {
        let mut rates: Vec<u64> = spec
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("--sweep: bad rate {s:?}")))
            .collect();
        rates.sort_unstable();
        rates.dedup();
        assert!(!rates.is_empty(), "--sweep needs at least one rate");
        let sweep_secs = args.opt_u64("sweep-secs", 2).max(1);
        let knee_p99 = args.opt_u64("knee-p99-us", 100_000) as f64;
        let knee_shed = args.opt_u64("knee-shed-pct", 1) as f64 / 100.0;
        let mut knee = *rates.last().unwrap();
        let mut saturated = false;
        for (i, &probe_rate) in rates.iter().enumerate() {
            let cfg = PassCfg {
                rate: probe_rate,
                steady_ms: sweep_secs * 1000,
                burst_ms: 0,
                burst_mult: 1,
                cold: false,
                seed,
                deadline_ms,
                pass: i as u64 + 1,
            };
            let (mut pass_acct, _) = run_pass(&socket, &keys, &zipf, args.size, conns, cfg);
            retry_pass(&socket, &keys, args.size, deadline_ms, max_retries, &mut pass_acct);
            let pa = &pass_acct.phases[PH_STEADY];
            let pp = |q: f64| pa.hist.percentile_opt(q).unwrap_or(0.0);
            let shed_rate = pa.shed as f64 / (pa.sent as f64).max(1.0);
            println!(
                "nsc_load: sweep rate={probe_rate} sent={} ok={} shed={} p50={:.0}µs p99={:.0}µs p999={:.0}µs shed_rate={shed_rate:.3}",
                pa.sent,
                pa.ok,
                pa.shed,
                pp(50.0),
                pp(99.0),
                pp(99.9),
            );
            // Protocol violations in probe passes are just as fatal as
            // in the soak: fold them into the exit gate.
            acct.lost += pass_acct.lost;
            acct.dup += pass_acct.dup;
            acct.mismatch += pass_acct.mismatch;
            if !saturated && (pp(99.0) > knee_p99 || shed_rate > knee_shed) {
                knee = probe_rate;
                saturated = true;
            }
        }
        println!(
            "nsc_load: knee={knee} rps ({}; thresholds p99>{knee_p99:.0}µs shed_rate>{knee_shed:.3})",
            if saturated { "first saturated rate" } else { "no swept rate saturated" },
        );
        knee_rps = Some(knee as f64);
    }

    if let Some(path) = args.opt("bench-out") {
        write_bench_out(
            path,
            args.size,
            open_loop_wall,
            throughput_rps,
            &acct,
            [secs * 750, secs * 250],
            knee_rps,
        );
    }
    if acct.lost > 0 || acct.dup > 0 || acct.mismatch > 0 {
        eprintln!(
            "nsc_load: FAILED: lost={} dup={} mismatch={} (every accepted request must get \
             exactly one terminal response, and completed runs must be bit-identical per key)",
            acct.lost, acct.dup, acct.mismatch,
        );
        std::process::exit(1);
    }
}
