//! Ablation: range-based vs Bloom-filter alias summaries (paper footnote
//! 2). A strided core access pattern inside a stream's address hull
//! triggers false-positive flushes under ranges but not under Bloom
//! filters.

use near_stream::range_sync::AliasFilterKind;
use near_stream::{ExecMode, RunRequest, RunResult, SystemConfig};
use nsc_bench::{finalize, Cli, Report, SweepTask};
use nsc_compiler::compile;
use nsc_ir::build::KernelBuilder;
use nsc_ir::{BinOp, ElemType, Expr, Program};
use nsc_workloads::Size;
use std::sync::Arc;

fn main() {
    Cli::new("abl_alias_filter", "Ablation: range vs Bloom alias summaries").parse();
    // A streamed store over b[] while the core reads scattered (quadratic,
    // unstreamable) locations of a *different* region of b[]: the range
    // hull covers them (false positives), the Bloom filter does not.
    let n = 64 * 1024u64;
    let mut p = Program::new("alias_abl");
    let a = p.array("a", ElemType::I64, n);
    let b = p.array("b", ElemType::I64, 16 * n / 2 + 16);
    let out = p.array("out", ElemType::I64, n);
    let mut k = KernelBuilder::new("k", n / 32);
    let i = k.outer_var();
    let v = k.load(a, Expr::var(i));
    // The stream writes every other cache line (stride 16 elements): a
    // sparse footprint with a huge range hull.
    k.store(b, Expr::var(i) * Expr::imm(16), Expr::var(v));
    let idx = k.let_(Expr::bin(
        BinOp::Rem,
        Expr::var(i) * Expr::var(i) + Expr::imm(1),
        Expr::imm((n / 32) as i64),
    ));
    // Core reads the *untouched* lines in between: never written by the
    // stream, but inside its range hull.
    let probe = k.load(b, Expr::var(idx) * Expr::imm(16) + Expr::imm(8));
    k.store(out, Expr::var(i), Expr::var(probe));
    p.push_kernel(k.finish());
    let compiled = compile(&p);
    let shared = Arc::new((p, compiled));

    let mut rep = Report::new("abl_alias_filter", Size::Small);
    rep.meta("ablation", "alias-summary structure");
    let kinds = [("range", AliasFilterKind::Range), ("bloom", AliasFilterKind::Bloom)];
    let tasks: Vec<SweepTask<RunResult>> = kinds
        .iter()
        .map(|&(_, kind)| {
            let shared = Arc::clone(&shared);
            Box::new(move || {
                let mut cfg = SystemConfig::small();
                cfg.se.alias_filter = kind;
                let (program, compiled) = &*shared;
                RunRequest::new(program)
                    .compiled(compiled)
                    .mode(ExecMode::Ns)
                    .config(&cfg)
                    .run_cached()
            }) as SweepTask<RunResult>
        })
        .collect();
    let results = rep.sweep(tasks);
    println!("# Ablation: alias-summary structure (NS, range-synchronized)");
    println!("{:8} {:>12} {:>14} {:>12}", "filter", "cycles", "bytes x hops", "flushes");
    for ((name, _), r) in kinds.iter().zip(&results) {
        rep.run("alias_abl", name, r);
        rep.stat(&format!("flushes.{name}"), r.alias_flushes as f64);
        println!(
            "{:8} {:>12} {:>14} {:>12}",
            name,
            r.cycles,
            r.traffic.total(),
            r.alias_flushes
        );
    }
    println!();
    println!("Bloom filters avoid the hull's false positives at the cost of");
    println!("larger synchronization state (2 kbit/stream vs one 96-bit range).");
    finalize(rep);
}
