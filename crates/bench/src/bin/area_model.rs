//! The paper's area paragraph (§VII-A): SE component areas and whole-chip
//! overhead.

use near_stream::CoreModel;
use nsc_bench::{finalize, Cli, Report};
use nsc_energy::area::AreaModel;
use nsc_workloads::Size;

fn main() {
    Cli::new("area_model", "SE component areas and whole-chip overhead").parse();
    let a = AreaModel::paper_22nm();
    let mut rep = Report::new("area_model", Size::Paper);
    rep.meta("model", "CACTI/McPAT-class, 22nm");
    rep.stat("se_core_mm2", a.se_core_mm2);
    rep.stat("se_l3_buffer_mm2", a.se_l3_buffer_mm2);
    rep.stat("se_l3_config_mm2", a.se_l3_config_mm2);
    println!("# Area model (22nm, CACTI/McPAT-class)");
    println!("SE_core stream buffer:        {:.3} mm^2 (paper: 0.09)", a.se_core_mm2);
    println!("SE_L3 stream buffer (64kB):   {:.3} mm^2 (paper: 0.195)", a.se_l3_buffer_mm2);
    println!("SE_L3 config SRAM (48kB):     {:.3} mm^2 (paper: 0.11)", a.se_l3_config_mm2);
    for core in CoreModel::all() {
        rep.stat(&format!("overhead_fraction.{}", core.name), a.overhead_fraction(&core));
        println!(
            "whole-chip overhead ({:5}):   {:.2}%",
            core.name,
            100.0 * a.overhead_fraction(&core)
        );
    }
    println!("(paper: 2.5% for IO4, 2.1% for OOO8)");
    finalize(rep);
}
