//! Ablation: compact stream migration (paper §IV-D future work) — banks
//! remember visited streams so re-visits send only the changing fields.

use near_stream::{ExecMode, RunResult};
use nsc_bench::{finalize, Cli, prepare, system_for, Report, SweepTask};
use nsc_workloads::{bin_tree, hash_join, pr_pull};
use std::sync::Arc;

fn main() {
    let size = Cli::new("abl_migration", "Ablation: compact stream migration").parse().size;
    let mut rep = Report::new("abl_migration", size);
    rep.meta("ablation", "compact stream migration");
    let preps: Vec<Arc<_>> = [bin_tree(size), hash_join(size), pr_pull(size)]
        .into_iter()
        .map(|w| Arc::new(prepare(w)))
        .collect();
    let mut tasks: Vec<SweepTask<RunResult>> = Vec::new();
    for p in &preps {
        for compact in [false, true] {
            let p = Arc::clone(p);
            let mut cfg = system_for(size);
            cfg.se.compact_migration = compact;
            tasks.push(Box::new(move || p.run_cached(ExecMode::NsDecouple, &cfg)));
        }
    }
    let mut results = rep.sweep(tasks).into_iter();
    println!("# Ablation: compact migration (NS-decouple)");
    println!(
        "{:10} {:>14} {:>14} {:>9} {:>9}",
        "workload", "full(BxH)", "compact(BxH)", "traffic-", "speedup"
    );
    for p in &preps {
        let full = results.next().expect("one result per task");
        let compact = results.next().expect("one result per task");
        rep.run(p.workload.name, "NS-decouple-full", &full);
        rep.run(p.workload.name, "NS-decouple-compact", &compact);
        println!(
            "{:10} {:>14} {:>14} {:>8.1}% {:>8.2}x",
            p.workload.name,
            full.traffic.total(),
            compact.traffic.total(),
            100.0 * (1.0 - compact.traffic.total() as f64 / full.traffic.total().max(1) as f64),
            full.cycles as f64 / compact.cycles.max(1) as f64,
        );
    }
    println!("(the paper estimated migration traffic was already low; this bounds the win)");
    finalize(rep);
}
