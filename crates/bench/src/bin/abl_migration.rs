//! Ablation: compact stream migration (paper §IV-D future work) — banks
//! remember visited streams so re-visits send only the changing fields.

use near_stream::ExecMode;
use nsc_bench::{parse_size, prepare, system_for, Report};
use nsc_workloads::{bin_tree, hash_join, pr_pull};

fn main() {
    let size = parse_size();
    let mut rep = Report::new("abl_migration", size);
    rep.meta("ablation", "compact stream migration");
    println!("# Ablation: compact migration (NS-decouple)");
    println!(
        "{:10} {:>14} {:>14} {:>9} {:>9}",
        "workload", "full(BxH)", "compact(BxH)", "traffic-", "speedup"
    );
    for w in [bin_tree(size), hash_join(size), pr_pull(size)] {
        let p = prepare(w);
        let mut base_cfg = system_for(size);
        base_cfg.se.compact_migration = false;
        let (full, _) = p.run_unchecked(ExecMode::NsDecouple, &base_cfg);
        let mut cfg = system_for(size);
        cfg.se.compact_migration = true;
        let (compact, _) = p.run_unchecked(ExecMode::NsDecouple, &cfg);
        rep.run(p.workload.name, "NS-decouple-full", &full);
        rep.run(p.workload.name, "NS-decouple-compact", &compact);
        println!(
            "{:10} {:>14} {:>14} {:>8.1}% {:>8.2}x",
            p.workload.name,
            full.traffic.total(),
            compact.traffic.total(),
            100.0 * (1.0 - compact.traffic.total() as f64 / full.traffic.total().max(1) as f64),
            full.cycles as f64 / compact.cycles.max(1) as f64,
        );
    }
    println!("(the paper estimated migration traffic was already low; this bounds the win)");
    rep.finish().expect("write results json");
}
