//! Fault-injection sweep: every workload under NS with injected NoC,
//! bank, offload and alias-filter faults.
//!
//! The invariant this harness enforces (and the recovery protocol's whole
//! point): for any seed and fault rate, every workload computes a result
//! bit-identical to the fault-free run — faults cost cycles and traffic,
//! never correctness. The harness runs each workload clean, then across a
//! rate sweep x several seeds, asserts digest equality everywhere, and
//! reports the worst-case slowdown plus the recovery counters
//! (`fault.injected`, `offload.retries`, `offload.fallbacks`,
//! `rangesync.replays`).
//!
//! `--seeds N` limits the sweep to the first N seeds (CI smoke uses 1).

use near_stream::{ExecMode, RunResult};
use nsc_bench::{finalize, prepare, system_for, Cli, Report, SweepTask};
use nsc_sim::fault::{self, FaultPlan};
use nsc_workloads::all;
use std::sync::Arc;

/// Injection probabilities per fault site and draw (0 = the clean run).
const RATES: [f64; 3] = [1e-4, 1e-3, 1e-2];
/// Fixed seeds: the schedule is deterministic per (seed, rate).
const SEEDS: [u64; 4] = [1, 7, 42, 0xC0FFEE];

fn main() {
    let args = Cli::new("fig_fault_sweep", "Fault-injection sweep: NS under injected faults")
        .opt("seeds", "N", "limit the sweep to the first N seeds")
        .parse();
    let size = args.size;
    let n_seeds = args.opt_u64("seeds", SEEDS.len() as u64).clamp(1, SEEDS.len() as u64) as usize;
    let seeds = &SEEDS[..n_seeds];
    let cfg = system_for(size);
    let mut rep = Report::new("fig_fault_sweep", size);
    rep.meta("figure", "fault-sweep");
    rep.meta("modes", "NS");
    rep.meta("seeds", &format!("{seeds:?}"));
    let preps: Vec<Arc<_>> = all(size).into_iter().map(|w| Arc::new(prepare(w))).collect();
    // Per workload: the clean run, then every (rate, seed) cell. Each
    // faulty task arms its *own* plan on whichever worker runs it — the
    // schedule is a pure function of (seed, rate), so the sweep is
    // bit-identical for any NSC_JOBS.
    let mut tasks: Vec<SweepTask<(RunResult, u64)>> = Vec::new();
    for p in &preps {
        for plan in std::iter::once(None)
            .chain(RATES.iter().flat_map(|&rate| {
                seeds.iter().map(move |&seed| Some(FaultPlan::uniform(seed, rate)))
            }))
        {
            let p = Arc::clone(p);
            let cfg = cfg.clone();
            tasks.push(Box::new(move || {
                let armed = plan.is_some();
                if let Some(plan) = plan {
                    fault::install(plan);
                }
                let (r, mem) = p.run_unchecked(ExecMode::Ns, &cfg);
                if armed {
                    fault::uninstall();
                }
                let digest = p.workload.digest(&mem);
                (r, digest)
            }));
        }
    }
    let mut results = rep.sweep(tasks).into_iter();
    println!("# Fault sweep: NS under injected faults, size {size:?}, {n_seeds} seed(s)");
    println!(
        "{:11} {:>12} | per rate: worst slowdown (faults/retries/fallbacks/replays)",
        "workload", "clean cyc"
    );
    let mut violations = 0u64;
    let mut worst_overall = 1.0f64;
    for p in &preps {
        let want = p.workload.golden_digest();
        let (clean, clean_digest) = results.next().expect("one result per task");
        assert_eq!(
            clean_digest, want,
            "{} clean NS run diverged from golden",
            p.workload.name
        );
        rep.run(p.workload.name, "clean", &clean);
        let mut cells = Vec::new();
        for &rate in &RATES {
            let mut worst = 1.0f64;
            let mut totals = [0u64; 4];
            for &seed in seeds {
                let (r, digest) = results.next().expect("one result per task");
                if digest != want {
                    violations += 1;
                    eprintln!(
                        "TRANSPARENCY VIOLATION: {} at rate {rate:e} seed {seed}",
                        p.workload.name
                    );
                }
                worst = worst.max(r.cycles as f64 / clean.cycles.max(1) as f64);
                totals[0] += r.faults_injected;
                totals[1] += r.offload_retries;
                totals[2] += r.offload_fallbacks;
                totals[3] += r.rangesync_replays;
                rep.run(p.workload.name, &format!("ns_{rate:e}_s{seed}"), &r);
            }
            worst_overall = worst_overall.max(worst);
            cells.push(format!(
                "{rate:.0e}: {worst:4.2}x ({}/{}/{}/{})",
                totals[0], totals[1], totals[2], totals[3]
            ));
        }
        println!(
            "{:11} {:>12} | {}",
            p.workload.name,
            clean.cycles,
            cells.join(" | ")
        );
    }
    println!();
    println!("transparency violations: {violations}");
    println!("worst slowdown anywhere: {worst_overall:.2}x");
    rep.stat("transparency.violations", violations as f64);
    rep.stat("slowdown.worst", worst_overall);
    finalize(rep);
    assert_eq!(violations, 0, "faulty runs diverged from fault-free results");
}
