//! Figure 14: sensitivity to the stream-computing-context ROB size.
//! Paper shape: graph/pointer workloads are insensitive (scalar ops);
//! SIMD workloads need a larger ROB to overlap SCM computations.

use near_stream::{ExecMode, RunResult};
use nsc_bench::{finalize, Cli, prepare, system_for, Report, SweepTask};
use nsc_workloads::all;
use std::sync::Arc;

fn main() {
    let size = Cli::new("fig14_scc_rob", "Figure 14: sensitivity to the stream-computing-context ROB size").parse().size;
    let robs = [8u32, 16, 32, 64];
    let mut rep = Report::new("fig14_scc_rob", size);
    rep.meta("figure", "14");
    let preps: Vec<Arc<_>> = all(size).into_iter().map(|w| Arc::new(prepare(w))).collect();
    let mut tasks: Vec<SweepTask<RunResult>> = Vec::new();
    for p in &preps {
        // Reference (64 entries) first, then every sweep point.
        for rob in std::iter::once(64).chain(robs) {
            let p = Arc::clone(p);
            let mut cfg = system_for(size);
            cfg.se.scc_rob = rob;
            tasks.push(Box::new(move || p.run_cached(ExecMode::NsDecouple, &cfg)));
        }
    }
    let mut results = rep.sweep(tasks).into_iter();
    println!("# Figure 14: SCC ROB sensitivity (NS-decouple, normalized to 64 entries), size {size:?}");
    print!("{:11}", "workload");
    for r in robs {
        print!(" {:>7}", format!("{r}rob"));
    }
    println!();
    for p in &preps {
        let r64 = results.next().expect("one result per task");
        print!("{:11}", p.workload.name);
        for rob in robs {
            let r = results.next().expect("one result per task");
            let rel = r64.cycles as f64 / r.cycles.max(1) as f64;
            rep.stat(&format!("relative.{}.{rob}rob", p.workload.name), rel);
            print!(" {rel:7.2}");
        }
        println!();
    }
    finalize(rep);
}
