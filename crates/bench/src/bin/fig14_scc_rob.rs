//! Figure 14: sensitivity to the stream-computing-context ROB size.
//! Paper shape: graph/pointer workloads are insensitive (scalar ops);
//! SIMD workloads need a larger ROB to overlap SCM computations.

use near_stream::ExecMode;
use nsc_bench::{parse_size, prepare, system_for, Report};
use nsc_workloads::all;

fn main() {
    let size = parse_size();
    let robs = [8u32, 16, 32, 64];
    let mut rep = Report::new("fig14_scc_rob", size);
    rep.meta("figure", "14");
    println!("# Figure 14: SCC ROB sensitivity (NS-decouple, normalized to 64 entries), size {size:?}");
    print!("{:11}", "workload");
    for r in robs {
        print!(" {:>7}", format!("{r}rob"));
    }
    println!();
    for w in all(size) {
        let p = prepare(w);
        let mut cfg64 = system_for(size);
        cfg64.se.scc_rob = 64;
        let (r64, _) = p.run_unchecked(ExecMode::NsDecouple, &cfg64);
        print!("{:11}", p.workload.name);
        for rob in robs {
            let mut cfg = system_for(size);
            cfg.se.scc_rob = rob;
            let (r, _) = p.run_unchecked(ExecMode::NsDecouple, &cfg);
            let rel = r64.cycles as f64 / r.cycles.max(1) as f64;
            rep.stat(&format!("relative.{}.{rob}rob", p.workload.name), rel);
            print!(" {rel:7.2}");
        }
        println!();
    }
    rep.finish().expect("write results json");
}
