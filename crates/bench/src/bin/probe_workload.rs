//! Deep-dive probe for one workload: compiled streams plus Base / NS /
//! NS-decouple timing, traffic and memory-system counters.
//!
//! Usage: `probe_workload [workload] [--tiny|--small|--full] [--nocontention]`

use near_stream::ExecMode;
use nsc_bench::{finalize, prepare, system_for, Cli, Report};

fn main() {
    let args = Cli::new("probe_workload", "Deep-dive probe for one workload")
        .flag("nocontention", "disable NoC contention modelling")
        .positional("workload", "workload name (default pathfinder)")
        .parse();
    let name = args.positional().unwrap_or("pathfinder").to_string();
    let size = args.size;
    let mut cfg = system_for(size);
    if args.flag("nocontention") {
        cfg.mesh.contention = false;
    }
    let w = nsc_workloads::all(size).into_iter().find(|w| w.name == name).unwrap();
    let p = prepare(w);
    let mut rep = Report::new("probe_workload", size);
    rep.meta("workload", &name);
    for k in &p.compiled.kernels[..1] {
        for s in &k.streams { println!("  {s}"); }
        println!("  vw={} decoupled={}", k.vector_width, k.fully_decoupled);
    }
    for mode in [ExecMode::Base, ExecMode::Ns, ExecMode::NsDecouple] {
        let r = p.run_cached(mode, &cfg);
        rep.run(&name, mode.label(), &r);
        println!("{:12} cyc={:9} d/c/o={:>10}/{:>10}/{:>10} msgs={:8} dram={:7} l3h={:8} l3m={:7} l1h={} l1m={} inval={} wb={}",
            mode.label(), r.cycles, r.traffic.data, r.traffic.control, r.traffic.offloaded,
            r.traffic.messages, r.dram_accesses, r.mem.l3_hits, r.mem.l3_misses,
            r.mem.l1_hits, r.mem.l1_misses, r.mem.invalidations, r.mem.private_writebacks);
    }
    finalize(rep);
}
