//! Table I: capabilities of sub-thread near-data approaches. The
//! qualitative rows are the paper's; the workload-coverage row is computed
//! by running the implemented offload policies over the 14 workloads.

use near_stream::ExecMode;
use nsc_bench::{finalize, Cli, prepare, system_for, Report};
use nsc_workloads::all;

fn main() {
    let size = Cli::new("tab01_capabilities", "Table I: capabilities of sub-thread near-data approaches").parse().size;
    let cfg = system_for(size);
    let mut rep = Report::new("tab01_capabilities", size);
    rep.meta("table", "I");
    println!("# Table I: capabilities of sub-thread near-data approaches");
    println!("                      INST(Omni)  SINGLE(Livia)  Near-Stream");
    println!("Data level                  LLC         LLC/MC          LLC");
    println!("Prog. transparent           Yes             No          Yes");
    println!("Loop autonomous              No            Yes          Yes");
    // Workload coverage: a workload counts as covered if its
    // primary-pattern streams execute near data under the system.
    let mut cover = [0u32; 3];
    let modes = [ExecMode::Inst, ExecMode::Single, ExecMode::Ns];
    let mut n = 0;
    for w in all(size) {
        n += 1;
        let p = prepare(w);
        for (i, m) in modes.iter().enumerate() {
            let r = p.run_cached(*m, &cfg);
            let covered = r.offloaded_elems * 5 >= r.stream_elems.max(1); // >=20% of stream work near data
            if covered {
                cover[i] += 1;
            }
        }
    }
    for (i, m) in modes.iter().enumerate() {
        rep.stat(&format!("covered.{}", m.label()), cover[i] as f64);
    }
    rep.stat("workloads", n as f64);
    println!(
        "# workloads accel.     {:>8}/{n} {:>9}/{n} {:>9}/{n}   (paper: 10/14, 5/14*, 14/14)",
        cover[0], cover[1], cover[2]
    );
    println!("(*paper counts Livia's applicable set differently; see Table II)");
    finalize(rep);
}
