//! Table III: capabilities of stream-ISA works. Static comparison, with a
//! runtime assertion that this implementation generates all three address
//! patterns *and* offloads computation (the new dimension).

use nsc_bench::{finalize, Cli, Report};
use nsc_compiler::compile;
use nsc_ir::stream::AddrPatternClass;
use nsc_workloads::{all, Size};

fn main() {
    let size = Cli::new("tab03_stream_isas", "Table III: stream-ISA capabilities").parse().size;
    let mut rep = Report::new("tab03_stream_isas", size);
    rep.meta("table", "III");
    println!("# Table III: stream-ISA capabilities");
    println!("{:38} {:26} near-data compute?", "work", "addr patterns");
    for (name, pat, ndc) in [
        ("Stream-Specialized Processor [67]", "affine, indirect, ptr", "no"),
        ("Stream-Semantic Registers [62]", "affine", "no"),
        ("Unlimited Vector Extension [18]", "affine, indirect", "no"),
        ("Prodigy [65]", "affine, indirect", "no"),
        ("Stream Floating [68]", "affine, indirect, ptr", "address only"),
        ("Near-Stream Computing (this work)", "affine, indirect, ptr", "address + compute"),
    ] {
        println!("{name:38} {pat:26} {ndc}");
    }
    // Verify this implementation actually produces all three pattern kinds
    // with attached computation across the suite.
    let (mut aff, mut ind, mut ptr, mut compute) = (false, false, false, false);
    for w in all(Size::Tiny) {
        for k in compile(&w.program).kernels {
            for s in k.streams {
                match s.pattern {
                    AddrPatternClass::Affine { .. } => aff = true,
                    AddrPatternClass::Indirect { .. } => ind = true,
                    AddrPatternClass::PointerChase => ptr = true,
                }
                compute |= s.compute_uops > 0;
            }
        }
    }
    assert!(aff && ind && ptr && compute, "taxonomy coverage regression");
    rep.stat("patterns.affine", aff as u8 as f64);
    rep.stat("patterns.indirect", ind as u8 as f64);
    rep.stat("patterns.ptr_chase", ptr as u8 as f64);
    rep.stat("patterns.compute", compute as u8 as f64);
    println!();
    println!("verified: this implementation generates affine+indirect+ptr streams with computation");
    finalize(rep);
}
