//! Figure 15: affine range generation at SE_core vs sent by SE_L3
//! (NS mode, affine workloads). Paper shape: generating ranges at SE_core
//! saves ~15% traffic and ~5% performance.

use near_stream::{ExecMode, RunResult};
use nsc_bench::{finalize, Cli, prepare, system_for, Report, SweepTask};
use nsc_workloads::{histogram, hotspot, hotspot3d, pathfinder, srad};
use std::sync::Arc;

fn main() {
    let size = Cli::new("fig15_affine_ranges", "Figure 15: affine range generation at SE_core vs SE_L3").parse().size;
    let mut rep = Report::new("fig15_affine_ranges", size);
    rep.meta("figure", "15");
    let preps: Vec<Arc<_>> = [pathfinder(size), srad(size), hotspot(size), hotspot3d(size), histogram(size)]
        .into_iter()
        .map(|w| Arc::new(prepare(w)))
        .collect();
    let mut tasks: Vec<SweepTask<RunResult>> = Vec::new();
    for p in &preps {
        for at_core in [false, true] {
            let p = Arc::clone(p);
            let mut cfg = system_for(size);
            cfg.se.affine_ranges_at_core = at_core;
            tasks.push(Box::new(move || p.run_cached(ExecMode::Ns, &cfg)));
        }
    }
    let mut results = rep.sweep(tasks).into_iter();
    println!("# Figure 15: affine range generation (NS), size {size:?}");
    println!(
        "{:11} {:>12} {:>12} {:>9} {:>9}",
        "workload", "SE_L3(BxH)", "SEcore(BxH)", "traffic-", "speedup"
    );
    let (mut t_l3, mut t_core) = (0u64, 0u64);
    for p in &preps {
        let r_l3 = results.next().expect("one result per task");
        let r_core = results.next().expect("one result per task");
        t_l3 += r_l3.traffic.total();
        t_core += r_core.traffic.total();
        rep.run(p.workload.name, "NS-ranges-at-l3", &r_l3);
        rep.run(p.workload.name, "NS-ranges-at-core", &r_core);
        println!(
            "{:11} {:>12} {:>12} {:>8.1}% {:>8.2}x",
            p.workload.name,
            r_l3.traffic.total(),
            r_core.traffic.total(),
            100.0 * (1.0 - r_core.traffic.total() as f64 / r_l3.traffic.total().max(1) as f64),
            r_l3.cycles as f64 / r_core.cycles.max(1) as f64,
        );
    }
    let saved = 1.0 - t_core as f64 / t_l3.max(1) as f64;
    rep.stat("traffic_saved", saved);
    println!("overall traffic saved: {:.1}%  (paper: ~15%)", 100.0 * saved);
    finalize(rep);
}
