//! Figure 15: affine range generation at SE_core vs sent by SE_L3
//! (NS mode, affine workloads). Paper shape: generating ranges at SE_core
//! saves ~15% traffic and ~5% performance.

use near_stream::ExecMode;
use nsc_bench::{parse_size, prepare, system_for, Report};
use nsc_workloads::{histogram, hotspot, hotspot3d, pathfinder, srad};

fn main() {
    let size = parse_size();
    let mut rep = Report::new("fig15_affine_ranges", size);
    rep.meta("figure", "15");
    println!("# Figure 15: affine range generation (NS), size {size:?}");
    println!(
        "{:11} {:>12} {:>12} {:>9} {:>9}",
        "workload", "SE_L3(BxH)", "SEcore(BxH)", "traffic-", "speedup"
    );
    let (mut t_l3, mut t_core) = (0u64, 0u64);
    for w in [pathfinder(size), srad(size), hotspot(size), hotspot3d(size), histogram(size)] {
        let p = prepare(w);
        let mut cfg_l3 = system_for(size);
        cfg_l3.se.affine_ranges_at_core = false;
        let (r_l3, _) = p.run_unchecked(ExecMode::Ns, &cfg_l3);
        let mut cfg_core = system_for(size);
        cfg_core.se.affine_ranges_at_core = true;
        let (r_core, _) = p.run_unchecked(ExecMode::Ns, &cfg_core);
        t_l3 += r_l3.traffic.total();
        t_core += r_core.traffic.total();
        rep.run(p.workload.name, "NS-ranges-at-l3", &r_l3);
        rep.run(p.workload.name, "NS-ranges-at-core", &r_core);
        println!(
            "{:11} {:>12} {:>12} {:>8.1}% {:>8.2}x",
            p.workload.name,
            r_l3.traffic.total(),
            r_core.traffic.total(),
            100.0 * (1.0 - r_core.traffic.total() as f64 / r_l3.traffic.total().max(1) as f64),
            r_l3.cycles as f64 / r_core.cycles.max(1) as f64,
        );
    }
    let saved = 1.0 - t_core as f64 / t_l3.max(1) as f64;
    rep.stat("traffic_saved", saved);
    println!("overall traffic saved: {:.1}%  (paper: ~15%)", 100.0 * saved);
    rep.finish().expect("write results json");
}
