//! Figure 17: the SE scalar PE on/off (NS-decouple). Paper shape: affine
//! SIMD workloads insensitive; indirect/pointer-chasing workloads benefit
//! (~1.1x for hash_join), ~2.5% overall.

use near_stream::{ExecMode, RunResult};
use nsc_bench::{finalize, geomean, Cli, prepare, system_for, Report, SweepTask};
use nsc_workloads::all;
use std::sync::Arc;

fn main() {
    let size = Cli::new("fig17_scalar_pe", "Figure 17: SE scalar PE on/off under NS-decouple").parse().size;
    let mut rep = Report::new("fig17_scalar_pe", size);
    rep.meta("figure", "17");
    let preps: Vec<Arc<_>> = all(size).into_iter().map(|w| Arc::new(prepare(w))).collect();
    let mut tasks: Vec<SweepTask<RunResult>> = Vec::new();
    for p in &preps {
        for pe in [false, true] {
            let p = Arc::clone(p);
            let mut cfg = system_for(size);
            cfg.se.scalar_pe = pe;
            tasks.push(Box::new(move || p.run_cached(ExecMode::NsDecouple, &cfg)));
        }
    }
    let mut results = rep.sweep(tasks).into_iter();
    println!("# Figure 17: scalar PE sensitivity (NS-decouple), size {size:?}");
    println!("{:11} {:>12} {:>12} {:>9}", "workload", "no-PE(cyc)", "PE(cyc)", "speedup");
    let mut sp = Vec::new();
    for p in &preps {
        let off = results.next().expect("one result per task");
        let on = results.next().expect("one result per task");
        let s = off.cycles as f64 / on.cycles.max(1) as f64;
        sp.push(s);
        rep.stat(&format!("speedup.{}", p.workload.name), s);
        println!("{:11} {:>12} {:>12} {:>8.2}x", p.workload.name, off.cycles, on.cycles, s);
    }
    rep.stat("geomean.speedup", geomean(&sp));
    println!("geomean: {:.3}x  (paper: ~1.025x overall, ~1.1x hash_join)", geomean(&sp));
    finalize(rep);
}
