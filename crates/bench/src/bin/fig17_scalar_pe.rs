//! Figure 17: the SE scalar PE on/off (NS-decouple). Paper shape: affine
//! SIMD workloads insensitive; indirect/pointer-chasing workloads benefit
//! (~1.1x for hash_join), ~2.5% overall.

use near_stream::ExecMode;
use nsc_bench::{geomean, parse_size, prepare, system_for, Report};
use nsc_workloads::all;

fn main() {
    let size = parse_size();
    let mut rep = Report::new("fig17_scalar_pe", size);
    rep.meta("figure", "17");
    println!("# Figure 17: scalar PE sensitivity (NS-decouple), size {size:?}");
    println!("{:11} {:>12} {:>12} {:>9}", "workload", "no-PE(cyc)", "PE(cyc)", "speedup");
    let mut sp = Vec::new();
    for w in all(size) {
        let p = prepare(w);
        let mut cfg_off = system_for(size);
        cfg_off.se.scalar_pe = false;
        let (off, _) = p.run_unchecked(ExecMode::NsDecouple, &cfg_off);
        let mut cfg_on = system_for(size);
        cfg_on.se.scalar_pe = true;
        let (on, _) = p.run_unchecked(ExecMode::NsDecouple, &cfg_on);
        let s = off.cycles as f64 / on.cycles.max(1) as f64;
        sp.push(s);
        rep.stat(&format!("speedup.{}", p.workload.name), s);
        println!("{:11} {:>12} {:>12} {:>8.2}x", p.workload.name, off.cycles, on.cycles, s);
    }
    rep.stat("geomean.speedup", geomean(&sp));
    println!("geomean: {:.3}x  (paper: ~1.025x overall, ~1.1x hash_join)", geomean(&sp));
    rep.finish().expect("write results json");
}
