//! Shared infrastructure for the figure/table reproduction harnesses.
//!
//! Every binary in this crate regenerates one of the paper's figures or
//! tables (see DESIGN.md §5 for the index). Common conventions:
//!
//! * `--tiny` / `--small` (default) / `--full` pick the input scale
//!   (`--full` is the paper's Table VI parameters);
//! * output is plain text with one row per workload/configuration, in the
//!   same order as the paper.

use near_stream::{ExecMode, RunRequest, RunResult, SystemConfig};
use nsc_compiler::{compile, CompiledProgram};
use nsc_ir::Memory;
use nsc_sim::cache::{self, CacheStore};
use nsc_sim::fault::{self, FaultPlan};
use nsc_sim::json::{escape, fmt_f64};
use nsc_sim::metrics::{self, Registry};
use nsc_sim::pool::{self, run_ordered, ThreadPool};
use nsc_sim::trace::{self, chrome, RingRecorder};
use nsc_sim::{Histogram, SimError, StatsTable};
use nsc_workloads::{Size, Workload};
use std::cell::Cell;
use std::path::PathBuf;
use std::time::Instant;

pub mod cli;

pub use cli::{size_from_str, Args, Cli};

/// Parses the scale flag from `std::env::args`.
#[deprecated(since = "0.1.0", note = "use `Cli::new(..).parse().size` instead")]
pub fn parse_size() -> Size {
    for a in std::env::args() {
        match a.as_str() {
            "--tiny" => return Size::Tiny,
            "--full" | "--paper" => return Size::Paper,
            "--small" => return Size::Small,
            _ => {}
        }
    }
    Size::Small
}

/// The default evaluation system (paper Table V, OOO8).
///
/// At `--tiny`/`--small` scale the caches shrink with the inputs so the
/// offload-policy footprint heuristics see the same pressure the paper's
/// full-size runs do — but never below one cache line, which
/// `MemoryConfig::validate` rejects.
pub fn system_for(size: Size) -> SystemConfig {
    let line = nsc_mem::LINE_BYTES;
    match size {
        Size::Paper => SystemConfig::paper_ooo8(),
        Size::Small => {
            let mut cfg = SystemConfig::paper_ooo8();
            // Inputs are ~1/16 of Table VI, so caches shrink by the same
            // factor to preserve relative pressure.
            cfg.mem.l1.size_bytes = (cfg.mem.l1.size_bytes / 16).max(line);
            cfg.mem.l2.size_bytes = (cfg.mem.l2.size_bytes / 16).max(line);
            cfg.mem.l3_bank.size_bytes = (cfg.mem.l3_bank.size_bytes / 16).max(line);
            cfg
        }
        Size::Tiny => {
            let mut cfg = SystemConfig::small();
            cfg.mem.l1.size_bytes = (cfg.mem.l1.size_bytes / 2).max(line);
            cfg.mem.l2.size_bytes = (cfg.mem.l2.size_bytes / 2).max(line);
            cfg
        }
    }
}

/// A workload compiled once, runnable under many modes/configs.
pub struct Prepared {
    /// The workload.
    pub workload: Workload,
    /// Its compiled form.
    pub compiled: CompiledProgram,
}

/// Compiles a workload.
pub fn prepare(workload: Workload) -> Prepared {
    let compiled = compile(&workload.program);
    Prepared { workload, compiled }
}

impl Prepared {
    /// The canonical [`RunRequest`] for this workload under one
    /// mode/config: the compiled program, parameters and initializer all
    /// come from the workload.
    pub fn request<'a>(&'a self, mode: ExecMode, cfg: &SystemConfig) -> RunRequest<'a> {
        RunRequest::new(&self.workload.program)
            .compiled(&self.compiled)
            .params(&self.workload.params)
            .mode(mode)
            .config(cfg)
            .init(self.workload.init.as_ref())
    }

    /// Runs under one mode, validating the result against the golden
    /// digest.
    ///
    /// # Panics
    ///
    /// Panics if the simulated execution computes a different result from
    /// the golden functional run.
    pub fn run_checked(&self, mode: ExecMode, cfg: &SystemConfig) -> RunResult {
        let (result, mem) = self.request(mode, cfg).run();
        let got = self.workload.digest(&mem);
        let want = self.workload.golden_digest();
        assert_eq!(
            got, want,
            "{} under {:?} diverged from the golden result",
            self.workload.name, mode
        );
        result
    }

    /// Runs under one mode without the (expensive) golden check.
    pub fn run_unchecked(&self, mode: ExecMode, cfg: &SystemConfig) -> (RunResult, Memory) {
        self.request(mode, cfg).run()
    }

    /// Runs under one mode through the result cache (see
    /// [`RunRequest::run_cached`]): with `NSC_CACHE=1` a repeat of an
    /// unchanged sweep replays stored records instead of simulating.
    /// Returns metrics only — harnesses that need the final memory image
    /// use [`Prepared::run_unchecked`].
    pub fn run_cached(&self, mode: ExecMode, cfg: &SystemConfig) -> RunResult {
        self.request(mode, cfg).run_cached()
    }
}

/// Short stable label for a workload scale.
pub fn size_label(size: Size) -> &'static str {
    match size {
        Size::Tiny => "tiny",
        Size::Small => "small",
        Size::Paper => "paper",
    }
}

/// Percentile summary of one histogram, as stored in a report.
///
/// Percentiles are `None` for an empty histogram and render as JSON
/// `null` — a 0 would be indistinguishable from a real zero-latency
/// measurement.
#[derive(Clone, Copy, Debug)]
struct HistSummary {
    count: u64,
    mean: f64,
    p50: Option<f64>,
    p90: Option<f64>,
    p99: Option<f64>,
}

impl HistSummary {
    fn of(h: &Histogram) -> HistSummary {
        HistSummary {
            count: h.summary().count(),
            mean: h.summary().mean(),
            p50: h.percentile_opt(50.0),
            p90: h.percentile_opt(90.0),
            p99: h.percentile_opt(99.0),
        }
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => fmt_f64(x),
        None => "null".to_owned(),
    }
}

/// Machine-readable companion to a harness's text output.
///
/// Each fig/tab binary builds one `Report` and calls [`Report::finish`],
/// which writes `results/<name>.json` (schema `nsc-bench-v1`, documented
/// in DESIGN.md §Observability) next to the harness's `.txt` output.
///
/// The report doubles as the tracing entry point: when the environment
/// variable `NSC_TRACE` is set, [`Report::new`] installs a trace recorder
/// and `finish` exports the captured events as Chrome trace-event JSON
/// (openable in Perfetto). `NSC_TRACE=1` writes
/// `results/<name>.trace.json`; any other value is used as the output
/// path. `NSC_TRACE_CAP` bounds the number of retained events (default
/// one million) and `NSC_TRACE_SAMPLE` sets the minimum cycle spacing of
/// occupancy counter samples (default 64). `NSC_RESULTS_DIR` relocates
/// the `results/` directory.
///
/// The report is also the chaos-testing entry point: setting
/// `NSC_FAULT_RATE` (a probability > 0, e.g. `0.001`) makes `Report::new`
/// arm a deterministic fault injector for the whole harness run;
/// `NSC_FAULT_SEED` picks the schedule (default `0xC0FFEE`). Injected
/// faults perturb timing and traffic only — every workload still computes
/// bit-identical results — and `finish` records the totals under
/// `fault.*` stats.
pub struct Report {
    name: String,
    size: Size,
    meta: Vec<(String, String)>,
    stats: StatsTable,
    histograms: Vec<(String, HistSummary)>,
    trace_path: Option<PathBuf>,
    trace_knobs: Option<(usize, u64)>,
    fault_armed: bool,
    started: Instant,
    sim_runs: u64,
    sweeper: Option<Sweep>,
}

/// One unit of sweep work: an independent simulation (or any other
/// closure) whose result is collected in submission order.
pub type SweepTask<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// Fans independent `(workload, mode, config)` runs across `NSC_JOBS`
/// worker threads with **bit-identical** results for any job count.
///
/// Three rules make parallelism unobservable:
///
/// 1. results return in *submission order* (never completion order),
/// 2. when chaos mode is armed, each run gets its own injector seeded
///    by [`FaultPlan::for_run`] from `(base seed, submission index)`,
/// 3. when tracing, each run records into its own recorder and the
///    recorders are absorbed back into the main-thread tracer in
///    submission order.
///
/// Harnesses normally reach this through [`Report::sweep`], which also
/// counts the runs for the `host.sim_runs` stat.
pub struct Sweep {
    pool: ThreadPool,
    fault_base: Option<FaultPlan>,
    trace_knobs: Option<(usize, u64)>,
    /// Submission index of the next run; advances across `run` calls so
    /// every run of a harness draws a distinct fault stream.
    next_run: Cell<u64>,
}

impl Sweep {
    /// Builds a sweep with `jobs` workers and explicit instrumentation
    /// (bypassing the environment): `fault_base` arms a per-run derived
    /// injector, `trace_knobs` is `(capacity, sample_every)` for
    /// per-run recorders.
    pub fn with_jobs(
        jobs: usize,
        fault_base: Option<FaultPlan>,
        trace_knobs: Option<(usize, u64)>,
    ) -> Sweep {
        Sweep {
            pool: ThreadPool::new(jobs),
            fault_base,
            trace_knobs,
            next_run: Cell::new(0),
        }
    }

    /// Number of worker threads.
    pub fn jobs(&self) -> usize {
        self.pool.workers()
    }

    /// Runs every task, returning results in submission order.
    ///
    /// Instrumentation (fault injector, tracer) is armed *per run* on
    /// whichever worker picks the task up, then merged back on the
    /// calling thread in submission order — see the type docs for why
    /// this makes the output independent of `NSC_JOBS`.
    pub fn run<T: Send + 'static>(&self, tasks: Vec<SweepTask<T>>) -> Vec<T> {
        /// A task result plus whatever per-run instrumentation it captured.
        type Instrumented<T> =
            (T, Option<fault::FaultStats>, Option<RingRecorder>, Option<Registry>);
        let first_run = self.next_run.get();
        self.next_run.set(first_run + tasks.len() as u64);
        // Whether workers should carry metrics shards is decided here on
        // the submitting thread, so the per-task closures behave the same
        // no matter which worker runs them.
        let metering = metrics::installed();
        let wrapped: Vec<SweepTask<Instrumented<T>>> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, task)| {
                let fault_plan = self.fault_base.as_ref().map(|p| p.for_run(first_run + i as u64));
                let trace_knobs = self.trace_knobs;
                Box::new(move || {
                    let faulting = fault_plan.is_some();
                    if let Some(plan) = fault_plan {
                        fault::install(plan);
                    }
                    if let Some((cap, every)) = trace_knobs {
                        trace::install(RingRecorder::new(cap), every);
                    }
                    if metering {
                        metrics::install(Registry::new());
                    }
                    let value = task();
                    let fstats = if faulting { fault::uninstall() } else { None };
                    let rec = if trace_knobs.is_some() { trace::uninstall() } else { None };
                    let shard = if metering { metrics::uninstall() } else { None };
                    (value, fstats, rec, shard)
                }) as SweepTask<_>
            })
            .collect();
        run_ordered(&self.pool, wrapped)
            .into_iter()
            .map(|(value, fstats, rec, shard)| {
                if let Some(fstats) = fstats {
                    fault::absorb(fstats);
                }
                if let Some(rec) = rec {
                    trace::absorb(rec);
                }
                if let Some(shard) = shard {
                    // Every merge op commutes and saturates, but absorbing
                    // in submission order anyway keeps the discipline
                    // uniform with faults/traces and byte-identical
                    // snapshots trivially independent of NSC_JOBS.
                    metrics::absorb(&shard);
                }
                value
            })
            .collect()
    }
}

fn results_dir() -> PathBuf {
    std::env::var_os("NSC_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Report {
    /// Starts a report for harness `name` at scale `size`, installing a
    /// tracer when `NSC_TRACE` requests one.
    pub fn new(name: &str, size: Size) -> Report {
        let mut trace_knobs = None;
        let trace_path = match std::env::var("NSC_TRACE") {
            Ok(v) if !v.is_empty() && v != "0" => {
                let path = if v == "1" {
                    results_dir().join(format!("{name}.trace.json"))
                } else {
                    PathBuf::from(v)
                };
                let cap = env_u64("NSC_TRACE_CAP", 1 << 20) as usize;
                let sample_every = env_u64("NSC_TRACE_SAMPLE", 64);
                trace::install(RingRecorder::new(cap), sample_every);
                trace_knobs = Some((cap, sample_every));
                Some(path)
            }
            _ => None,
        };
        let fault_armed = match FaultPlan::from_env() {
            Some(plan) => {
                eprintln!(
                    "chaos: fault injection armed (seed {:#x}, rate {})",
                    plan.seed, plan.noc_drop
                );
                fault::install(plan);
                true
            }
            None => false,
        };
        // Every harness run carries a live metrics registry: the counters
        // feed the report's `host.profile` block, and the cost when
        // nothing reads them is one relaxed atomic load per event.
        metrics::install(Registry::new());
        Report {
            name: name.to_owned(),
            size,
            meta: Vec::new(),
            stats: StatsTable::new(),
            histograms: Vec::new(),
            trace_path,
            trace_knobs,
            fault_armed,
            started: Instant::now(),
            sim_runs: 0,
            sweeper: None,
        }
    }

    /// Fans `tasks` across `NSC_JOBS` workers (default: available
    /// parallelism) and returns their results in submission order; see
    /// [`Sweep`] for the determinism contract. Also counts the tasks
    /// into the `host.sim_runs` stat.
    ///
    /// The worker pool and the per-run instrumentation base (the
    /// environment's fault plan and trace knobs, as armed by
    /// [`Report::new`]) are created on first use and reused across
    /// calls.
    pub fn sweep<T: Send + 'static>(&mut self, tasks: Vec<SweepTask<T>>) -> Vec<T> {
        self.sim_runs = self.sim_runs.saturating_add(tasks.len() as u64);
        if self.sweeper.is_none() {
            self.sweeper = Some(Sweep::with_jobs(
                pool::jobs_from_env(),
                if self.fault_armed { FaultPlan::from_env() } else { None },
                self.trace_knobs,
            ));
        }
        self.sweeper.as_ref().expect("sweeper built above").run(tasks)
    }

    /// Counts simulations executed outside [`Report::sweep`] into the
    /// `host.sim_runs` stat.
    pub fn note_sim_runs(&mut self, n: u64) {
        self.sim_runs = self.sim_runs.saturating_add(n);
    }

    /// Attaches a free-form metadata string (e.g. a config description).
    pub fn meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_owned(), value.to_owned()));
    }

    /// Sets one scalar stat.
    pub fn stat(&mut self, key: &str, value: f64) {
        self.stats.set(key, value);
    }

    /// Records a full simulation result under `runs.<workload>.<mode>.*`,
    /// including its NoC latency percentiles.
    pub fn run(&mut self, workload: &str, mode: &str, r: &RunResult) {
        let prefix = format!("runs.{workload}.{mode}");
        for (k, v) in r.to_table().iter() {
            self.stats.set(&format!("{prefix}.{k}"), v);
        }
        self.hist(&format!("{prefix}.noc_latency"), &r.noc_latency);
    }

    /// Records a histogram's percentile summary under `key`.
    pub fn hist(&mut self, key: &str, h: &Histogram) {
        self.histograms.push((key.to_owned(), HistSummary::of(h)));
    }

    fn render(&self) -> String {
        let mut out = String::from("{\"schema\":\"nsc-bench-v1\"");
        out.push_str(&format!(",\"name\":\"{}\"", escape(&self.name)));
        out.push_str(&format!(",\"size\":\"{}\"", size_label(self.size)));
        out.push_str(",\"meta\":{");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
        }
        out.push_str("},\"stats\":");
        out.push_str(&self.stats.to_json());
        out.push_str(",\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                escape(k),
                h.count,
                fmt_f64(h.mean),
                fmt_opt(h.p50),
                fmt_opt(h.p90),
                fmt_opt(h.p99),
            ));
        }
        out.push('}');
        // Host-side observations (wall-clock, worker count, result-cache
        // hits) live in their own object, NOT under "stats": they
        // legitimately vary between otherwise bit-identical runs (a cold
        // and a warm cache produce the same science), so determinism
        // checks compare everything else and strip this one key.
        // Only an armed cache pays for a stats snapshot; disabled runs
        // report zeros without touching the store.
        let (cache_hits, cache_misses) = if cache::enabled() {
            let s = cache::shared().stats();
            (s.hits(), s.misses())
        } else {
            (0, 0)
        };
        let wall_ms = (self.started.elapsed().as_secs_f64() * 1e3 * 1e3).round() / 1e3;
        out.push_str(&format!(
            ",\"host\":{{\"jobs\":{},\"sim_runs\":{},\"cache_hits\":{},\"cache_misses\":{},\"wall_ms\":{},\"profile\":{}}}",
            self.sweeper.as_ref().map(Sweep::jobs).unwrap_or(0),
            self.sim_runs,
            cache_hits,
            cache_misses,
            fmt_f64(wall_ms),
            profile_json(&metrics::snapshot().unwrap_or_default(), wall_ms),
        ));
        out.push_str("}\n");
        out
    }

    /// Writes `results/<name>.json` (and the trace file, when tracing) and
    /// returns the stats path.
    pub fn finish(mut self) -> Result<PathBuf, SimError> {
        if self.fault_armed {
            if let Some(stats) = fault::uninstall() {
                self.stats.set("fault.injected", stats.total() as f64);
                for site in nsc_sim::fault::FaultSite::ALL {
                    self.stats
                        .set(&format!("fault.{}", site.label()), stats.count(site) as f64);
                }
            }
        }
        if let Some(path) = self.trace_path.take() {
            if let Some(rec) = trace::uninstall() {
                self.stats.set("trace.events", rec.len() as f64);
                self.stats.set("trace.dropped", rec.dropped() as f64);
                chrome::write_file(&path, rec.events())
                    .map_err(|e| SimError::io(path.display().to_string(), &e))?;
                eprintln!("trace: {}", path.display());
            }
        }
        let dir = results_dir();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SimError::io(dir.display().to_string(), &e))?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.render())
            .map_err(|e| SimError::io(path.display().to_string(), &e))?;
        metrics::uninstall();
        Ok(path)
    }
}

/// Renders the event-loop self-profiler block for `host.profile`.
///
/// The simulator never reads wall clocks on the hot path; instead every
/// instrumented event records how many *simulated* cycles it accounted
/// for, and the profiler attributes the harness's measured wall time
/// proportionally to each event kind's share of those cycles
/// (`est_ms = wall_ms * cycles / total_cycles`). The cycle shares are
/// deterministic; only `wall_ms` (already a host-side stat) varies
/// between runs.
fn profile_json(reg: &Registry, wall_ms: f64) -> String {
    let (total_events, total_cycles) = reg.prof_total();
    let mut out = format!(
        "{{\"total_events\":{total_events},\"total_cycles\":{total_cycles},\"by_kind\":{{"
    );
    let mut first = true;
    for p in metrics::Prof::ALL {
        let slot = reg.prof(p);
        if slot.events == 0 && slot.cycles == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let est_ms = if total_cycles == 0 {
            0.0
        } else {
            wall_ms * (slot.cycles as f64 / total_cycles as f64)
        };
        out.push_str(&format!(
            "\"{}\":{{\"component\":\"{}\",\"events\":{},\"cycles\":{},\"est_ms\":{}}}",
            escape(p.label()),
            escape(p.component()),
            slot.events,
            slot.cycles,
            fmt_f64((est_ms * 1e3).round() / 1e3),
        ));
    }
    out.push_str("}}");
    out
}

/// Finishes a report, or reports the failure the way a command-line
/// tool should: the typed error goes to stderr and the process exits
/// non-zero. An unwritable results directory is an environment problem,
/// not a bug — so no panic, no backtrace.
pub fn finalize(rep: Report) -> PathBuf {
    match rep.finish() {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a speedup column.
pub fn fmt_x(v: f64) -> String {
    format!("{v:6.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn size_parsing_defaults_small() {
        // No flags in the test harness args that match.
        #[allow(deprecated)]
        let s = parse_size();
        assert!(matches!(s, Size::Small | Size::Tiny | Size::Paper));
    }

    #[test]
    fn system_for_never_shrinks_below_one_line() {
        // Regression: the size scaling used integer division with no
        // floor, so configs whose caches were already near one line could
        // end up below it and fail `SystemConfig::validate`.
        for size in [Size::Tiny, Size::Small, Size::Paper] {
            let cfg = system_for(size);
            assert!(cfg.validate().is_ok(), "system_for({size:?}) must validate");
            assert!(cfg.mem.l1.size_bytes >= nsc_mem::LINE_BYTES);
            assert!(cfg.mem.l2.size_bytes >= nsc_mem::LINE_BYTES);
            assert!(cfg.mem.l3_bank.size_bytes >= nsc_mem::LINE_BYTES);
        }
    }

    #[test]
    fn run_checked_catches_nothing_on_correct_runs() {
        let p = prepare(nsc_workloads::histogram(Size::Tiny));
        let cfg = system_for(Size::Tiny);
        let r = p.run_checked(ExecMode::Base, &cfg);
        assert!(r.cycles > 0);
    }

    #[test]
    fn report_renders_schema_v1_json() {
        use nsc_sim::json::{parse, Json};
        let p = prepare(nsc_workloads::histogram(Size::Tiny));
        let cfg = system_for(Size::Tiny);
        let r = p.run_checked(ExecMode::Base, &cfg);

        let mut rep = Report::new("unit_report", Size::Tiny);
        rep.meta("modes", "base");
        rep.stat("geomean.speedup", 1.5);
        rep.run("histogram", "base", &r);
        let mut h = Histogram::new(8.0, 4);
        h.record(3.0);
        h.record(19.0);
        rep.hist("extra", &h);

        let doc = parse(&rep.render()).expect("report is valid JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("nsc-bench-v1"));
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("unit_report"));
        assert_eq!(doc.get("size").and_then(Json::as_str), Some("tiny"));
        let stats = doc.get("stats").and_then(Json::as_obj).unwrap();
        assert!(stats.contains_key("runs.histogram.base.cycles"));
        assert_eq!(stats.get("geomean.speedup").and_then(Json::as_f64), Some(1.5));
        let hists = doc.get("histograms").and_then(Json::as_obj).unwrap();
        let extra = hists.get("extra").unwrap();
        assert_eq!(extra.get("count").and_then(Json::as_f64), Some(2.0));
        assert!(extra.get("p99").and_then(Json::as_f64).unwrap() >= extra
            .get("p50")
            .and_then(Json::as_f64)
            .unwrap());
        assert!(hists.contains_key("runs.histogram.base.noc_latency"));
    }

    #[test]
    fn sweep_is_bit_identical_across_job_counts() {
        let outputs: Vec<Vec<u64>> = [1usize, 4, 8]
            .iter()
            .map(|&jobs| {
                let sweep = Sweep::with_jobs(jobs, Some(FaultPlan::uniform(9, 0.5)), None);
                let tasks: Vec<SweepTask<u64>> = (0..24u64)
                    .map(|i| {
                        Box::new(move || {
                            // Consume per-run injector draws so the test
                            // fails if runs ever share a PRNG stream.
                            let mut hits = 0u64;
                            for _ in 0..8 {
                                hits +=
                                    nsc_sim::fault::inject(nsc_sim::fault::FaultSite::MemError)
                                        as u64;
                            }
                            i * 100 + hits
                        }) as SweepTask<u64>
                    })
                    .collect();
                sweep.run(tasks)
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "jobs=1 vs jobs=4");
        assert_eq!(outputs[0], outputs[2], "jobs=1 vs jobs=8");
        // Submission order: index i's result starts at i*100.
        for (i, v) in outputs[0].iter().enumerate() {
            assert_eq!(v / 100, i as u64);
        }
    }

    #[test]
    fn report_renders_host_object() {
        use nsc_sim::json::{parse, Json};
        let mut rep = Report::new("unit_host", Size::Tiny);
        let vals = rep.sweep((0..3u64).map(|i| Box::new(move || i) as SweepTask<u64>).collect());
        assert_eq!(vals, vec![0, 1, 2]);
        rep.note_sim_runs(2);
        let doc = parse(&rep.render()).expect("report is valid JSON");
        let host = doc.get("host").and_then(Json::as_obj).unwrap();
        assert!(host.get("jobs").and_then(Json::as_f64).unwrap() >= 1.0);
        assert_eq!(host.get("sim_runs").and_then(Json::as_f64), Some(5.0));
        assert!(host.get("wall_ms").and_then(Json::as_f64).unwrap() >= 0.0);
    }

    #[test]
    fn report_renders_populated_host_profile() {
        use nsc_sim::json::{parse, Json};
        let mut rep = Report::new("unit_profile", Size::Tiny);
        let p = prepare(nsc_workloads::histogram(Size::Tiny));
        let cfg = system_for(Size::Tiny);
        // Run through the sweep so the profiler exercises the worker-shard
        // absorb path, not just the main-thread registry.
        let results = rep.sweep(vec![Box::new(move || {
            p.run_checked(ExecMode::Ns, &cfg).cycles
        }) as SweepTask<u64>]);
        assert!(results[0] > 0);
        let doc = parse(&rep.render()).expect("report is valid JSON");
        let profile = doc
            .get("host")
            .and_then(|h| h.get("profile"))
            .and_then(Json::as_obj)
            .expect("host.profile present");
        assert!(profile.get("total_events").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(profile.get("total_cycles").and_then(Json::as_f64).unwrap() > 0.0);
        let by_kind = profile.get("by_kind").and_then(Json::as_obj).unwrap();
        assert!(!by_kind.is_empty(), "a simulation must attribute some cycles");
        for (_, v) in by_kind.iter() {
            assert!(v.get("component").and_then(Json::as_str).is_some());
            assert!(v.get("events").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(v.get("est_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        }
    }

    #[test]
    fn empty_histogram_percentiles_render_null() {
        use nsc_sim::json::{parse, Json};
        let mut rep = Report::new("unit_empty_hist", Size::Tiny);
        rep.hist("empty", &Histogram::new(8.0, 4));
        let doc = parse(&rep.render()).expect("report is valid JSON");
        let hists = doc.get("histograms").and_then(Json::as_obj).unwrap();
        let e = hists.get("empty").unwrap();
        assert_eq!(e.get("count").and_then(Json::as_f64), Some(0.0));
        assert_eq!(e.get("p50"), Some(&Json::Null));
        assert_eq!(e.get("p90"), Some(&Json::Null));
        assert_eq!(e.get("p99"), Some(&Json::Null));
    }
}
