//! Shared infrastructure for the figure/table reproduction harnesses.
//!
//! Every binary in this crate regenerates one of the paper's figures or
//! tables (see DESIGN.md §5 for the index). Common conventions:
//!
//! * `--tiny` / `--small` (default) / `--full` pick the input scale
//!   (`--full` is the paper's Table VI parameters);
//! * output is plain text with one row per workload/configuration, in the
//!   same order as the paper.

use near_stream::{run, ExecMode, RunResult, SystemConfig};
use nsc_compiler::{compile, CompiledProgram};
use nsc_ir::Memory;
use nsc_workloads::{Size, Workload};

/// Parses the scale flag from `std::env::args`.
pub fn parse_size() -> Size {
    for a in std::env::args() {
        match a.as_str() {
            "--tiny" => return Size::Tiny,
            "--full" | "--paper" => return Size::Paper,
            "--small" => return Size::Small,
            _ => {}
        }
    }
    Size::Small
}

/// The default evaluation system (paper Table V, OOO8).
///
/// At `--tiny`/`--small` scale the caches shrink with the inputs so the
/// offload-policy footprint heuristics see the same pressure the paper's
/// full-size runs do.
pub fn system_for(size: Size) -> SystemConfig {
    match size {
        Size::Paper => SystemConfig::paper_ooo8(),
        Size::Small => {
            let mut cfg = SystemConfig::paper_ooo8();
            // Inputs are ~1/16 of Table VI, so caches shrink by the same
            // factor to preserve relative pressure.
            cfg.mem.l1.size_bytes /= 16;
            cfg.mem.l2.size_bytes /= 16;
            cfg.mem.l3_bank.size_bytes /= 16;
            cfg
        }
        Size::Tiny => {
            let mut cfg = SystemConfig::small();
            cfg.mem.l1.size_bytes /= 2;
            cfg.mem.l2.size_bytes /= 2;
            cfg
        }
    }
}

/// A workload compiled once, runnable under many modes/configs.
pub struct Prepared {
    /// The workload.
    pub workload: Workload,
    /// Its compiled form.
    pub compiled: CompiledProgram,
}

/// Compiles a workload.
pub fn prepare(workload: Workload) -> Prepared {
    let compiled = compile(&workload.program);
    Prepared { workload, compiled }
}

impl Prepared {
    /// Runs under one mode, validating the result against the golden
    /// digest.
    ///
    /// # Panics
    ///
    /// Panics if the simulated execution computes a different result from
    /// the golden functional run.
    pub fn run_checked(&self, mode: ExecMode, cfg: &SystemConfig) -> RunResult {
        let (result, mem) = run(
            &self.workload.program,
            &self.compiled,
            &self.workload.params,
            mode,
            cfg,
            &self.workload.init,
        );
        let got = self.workload.digest(&mem);
        let want = self.workload.golden_digest();
        assert_eq!(
            got, want,
            "{} under {:?} diverged from the golden result",
            self.workload.name, mode
        );
        result
    }

    /// Runs under one mode without the (expensive) golden check.
    pub fn run_unchecked(&self, mode: ExecMode, cfg: &SystemConfig) -> (RunResult, Memory) {
        run(
            &self.workload.program,
            &self.compiled,
            &self.workload.params,
            mode,
            cfg,
            &self.workload.init,
        )
    }
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a speedup column.
pub fn fmt_x(v: f64) -> String {
    format!("{v:6.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn size_parsing_defaults_small() {
        // No flags in the test harness args that match.
        let s = parse_size();
        assert!(matches!(s, Size::Small | Size::Tiny | Size::Paper));
    }

    #[test]
    fn run_checked_catches_nothing_on_correct_runs() {
        let p = prepare(nsc_workloads::histogram(Size::Tiny));
        let cfg = system_for(Size::Tiny);
        let r = p.run_checked(ExecMode::Base, &cfg);
        assert!(r.cycles > 0);
    }
}
