//! Microbenchmarks of the simulation substrates: cache tag array, mesh
//! routing/accounting, bandwidth ledger and IR interpretation throughput.
//!
//! Uses a hand-rolled timing harness (no criterion) so the workspace
//! builds offline. Run with `cargo bench --features criterion-bench`.

use std::hint::black_box;
use std::time::Instant;

use nsc_ir::build::KernelBuilder;
use nsc_ir::{ElemType, Expr, Program};
use nsc_mem::{Cache, CacheConfig, LineAddr, ReplacePolicy};
use nsc_noc::{Mesh, MeshConfig, MsgClass, TileId};
use nsc_sim::resource::BandwidthLedger;
use nsc_sim::{Cycle, EventQueue};

/// Times `iters` calls of `f` after a short warm-up and prints ns/iter.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let per = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<24} {per:>12.1} ns/iter   ({iters} iters, {elapsed:.2?} total)");
}

fn bench_cache() {
    let mut cache = Cache::new(CacheConfig {
        size_bytes: 32 * 1024,
        ways: 8,
        latency: Cycle(2),
        policy: ReplacePolicy::BimodalRrip {
            p_promote_permille: 30,
        },
        set_skip_bits: 0,
    });
    let mut i = 0u64;
    bench("cache_insert_lookup", 1_000_000, || {
        i = i.wrapping_add(97);
        cache.insert(LineAddr(i % 4096), false, Cycle::ZERO);
        black_box(cache.lookup(LineAddr((i / 2) % 4096), Cycle::ZERO));
    });
}

fn bench_mesh() {
    let mut mesh = Mesh::new(MeshConfig::paper_8x8());
    let mut t = 0u64;
    bench("mesh_send_8x8", 1_000_000, || {
        t += 1;
        black_box(mesh.send(
            Cycle(t),
            TileId((t % 64) as u16),
            TileId(((t * 7) % 64) as u16),
            64,
            MsgClass::Data,
        ));
    });
}

fn bench_ledger() {
    let mut l = BandwidthLedger::new(16, 16);
    let mut t = 0u64;
    bench("ledger_book", 1_000_000, || {
        t += 3;
        black_box(l.book(Cycle(t), 2));
    });
}

/// Hold-model queue benchmark: a steady population of `depth` events,
/// each pop schedules a successor a short distance ahead — the event
/// queue's actual usage pattern in the simulator.
fn bench_queue() {
    for depth in [64usize, 1024] {
        // Calendar queue (the production implementation).
        let mut q = EventQueue::new();
        let mut t = 0u64;
        for i in 0..depth {
            q.push(Cycle(1 + (i as u64 * 13) % 97), i);
        }
        bench(&format!("calendar_queue_d{depth}"), 2_000_000, || {
            let (now, payload) = q.pop().expect("held population");
            t = now.raw();
            q.push(Cycle(t + 1 + (t * 31 + payload as u64) % 97), payload);
            black_box(payload);
        });

        // BinaryHeap reference with the same (time, seq) contract, for the
        // speedup denominator in perf reports.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>> =
            std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        for i in 0..depth {
            heap.push(std::cmp::Reverse((1 + (i as u64 * 13) % 97, seq, i)));
            seq += 1;
        }
        bench(&format!("binaryheap_ref_d{depth}"), 2_000_000, || {
            let std::cmp::Reverse((now, _, payload)) = heap.pop().expect("held population");
            heap.push(std::cmp::Reverse((now + 1 + (now * 31 + payload as u64) % 97, seq, payload)));
            seq += 1;
            black_box(payload);
        });
    }
}

fn bench_interp() {
    let n = 4096;
    let mut p = Program::new("vecadd");
    let a = p.array("a", ElemType::I64, n);
    let bb = p.array("b", ElemType::I64, n);
    let cc = p.array("c", ElemType::I64, n);
    let mut k = KernelBuilder::new("add", n);
    let i = k.outer_var();
    let va = k.load(a, Expr::var(i));
    let vb = k.load(bb, Expr::var(i));
    k.store(cc, Expr::var(i), Expr::var(va) + Expr::var(vb));
    p.push_kernel(k.finish());
    bench("interp_vecadd_4k", 200, || {
        let mut mem = nsc_ir::Memory::for_program(&p);
        nsc_ir::interp::run_program(&p, &mut mem, &[]);
        black_box(mem.read_index(cc, 7));
    });
}

fn main() {
    bench_cache();
    bench_mesh();
    bench_ledger();
    bench_queue();
    bench_interp();
}
