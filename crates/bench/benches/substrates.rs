//! Microbenchmarks of the simulation substrates: cache tag array, mesh
//! routing/accounting, bandwidth ledger and IR interpretation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nsc_ir::build::KernelBuilder;
use nsc_ir::{ElemType, Expr, Program};
use nsc_mem::{Cache, CacheConfig, LineAddr, ReplacePolicy};
use nsc_noc::{Mesh, MeshConfig, MsgClass, TileId};
use nsc_sim::resource::BandwidthLedger;
use nsc_sim::Cycle;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_insert_lookup", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            latency: Cycle(2),
            policy: ReplacePolicy::BimodalRrip { p_promote_permille: 30 },
            set_skip_bits: 0,
        });
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(97);
            cache.insert(LineAddr(i % 4096), false, Cycle::ZERO);
            black_box(cache.lookup(LineAddr((i / 2) % 4096), Cycle::ZERO));
        });
    });
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("mesh_send_8x8", |b| {
        let mut mesh = Mesh::new(MeshConfig::paper_8x8());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(mesh.send(
                Cycle(t),
                TileId((t % 64) as u16),
                TileId(((t * 7) % 64) as u16),
                64,
                MsgClass::Data,
            ));
        });
    });
}

fn bench_ledger(c: &mut Criterion) {
    c.bench_function("ledger_book", |b| {
        let mut l = BandwidthLedger::new(16, 16);
        let mut t = 0u64;
        b.iter(|| {
            t += 3;
            black_box(l.book(Cycle(t), 2));
        });
    });
}

fn bench_interp(c: &mut Criterion) {
    c.bench_function("interp_vecadd_4k", |b| {
        let n = 4096;
        let mut p = Program::new("vecadd");
        let a = p.array("a", ElemType::I64, n);
        let bb = p.array("b", ElemType::I64, n);
        let cc = p.array("c", ElemType::I64, n);
        let mut k = KernelBuilder::new("add", n);
        let i = k.outer_var();
        let va = k.load(a, Expr::var(i));
        let vb = k.load(bb, Expr::var(i));
        k.store(cc, Expr::var(i), Expr::var(va) + Expr::var(vb));
        p.push_kernel(k.finish());
        b.iter(|| {
            let mut mem = nsc_ir::Memory::for_program(&p);
            nsc_ir::interp::run_program(&p, &mut mem, &[]);
            black_box(mem.read_index(cc, 7));
        });
    });
}

criterion_group!(benches, bench_cache, bench_mesh, bench_ledger, bench_interp);
criterion_main!(benches);
