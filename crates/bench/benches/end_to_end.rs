//! End-to-end simulation throughput: one tiny workload per taxonomy
//! category, Base vs NS, measuring simulator wall time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use near_stream::{run, ExecMode, SystemConfig};
use nsc_compiler::compile;
use nsc_workloads::{hash_join, histogram, hotspot, pr_push, Size};

fn bench_mode(c: &mut Criterion, name: &str, w: nsc_workloads::Workload) {
    let compiled = compile(&w.program);
    let cfg = SystemConfig::small();
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    for mode in [ExecMode::Base, ExecMode::Ns, ExecMode::NsDecouple] {
        g.bench_function(mode.label(), |b| {
            b.iter(|| {
                let (r, _) = run(&w.program, &compiled, &w.params, mode, &cfg, &w.init);
                black_box(r.cycles)
            });
        });
    }
    g.finish();
}

fn end_to_end(c: &mut Criterion) {
    bench_mode(c, "hotspot_tiny", hotspot(Size::Tiny));
    bench_mode(c, "histogram_tiny", histogram(Size::Tiny));
    bench_mode(c, "pr_push_tiny", pr_push(Size::Tiny));
    bench_mode(c, "hash_join_tiny", hash_join(Size::Tiny));
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);
