//! End-to-end simulation throughput: one tiny workload per taxonomy
//! category, Base vs NS, measuring simulator wall time.
//!
//! Uses a hand-rolled timing harness (no criterion) so the workspace
//! builds offline. Run with `cargo bench --features criterion-bench`.

use std::hint::black_box;
use std::time::Instant;

use near_stream::{ExecMode, RunRequest, SystemConfig};
use nsc_compiler::compile;
use nsc_workloads::{hash_join, histogram, hotspot, pr_push, Size};

fn bench_mode(name: &str, w: nsc_workloads::Workload) {
    let compiled = compile(&w.program);
    let cfg = SystemConfig::small();
    for mode in [ExecMode::Base, ExecMode::Ns, ExecMode::NsDecouple] {
        let iters = 10;
        let request = || {
            RunRequest::new(&w.program)
                .compiled(&compiled)
                .params(&w.params)
                .mode(mode)
                .config(&cfg)
                .init(&w.init)
        };
        // Warm-up run, then timed samples.
        let (r, _) = request().run();
        black_box(r.cycles);
        let start = Instant::now();
        for _ in 0..iters {
            let (r, _) = request().run();
            black_box(r.cycles);
        }
        let per = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
        println!("{name:<16} {:<12} {per:>9.3} ms/run", mode.label());
    }
}

fn main() {
    bench_mode("hotspot_tiny", hotspot(Size::Tiny));
    bench_mode("histogram_tiny", histogram(Size::Tiny));
    bench_mode("pr_push_tiny", pr_push(Size::Tiny));
    bench_mode("hash_join_tiny", hash_join(Size::Tiny));
}
