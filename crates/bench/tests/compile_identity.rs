//! The compiled-bytecode plan must be invisible in every observable:
//! same simulated counters, same memory image, same report bytes.
//!
//! Two layers of evidence:
//!
//! * **In-process** — the same workloads simulated with their
//!   `CompiledKernel::plan` present and forcibly stripped (`plan = None`
//!   routes the engine back onto the tree walker) must produce identical
//!   stats tables and result digests.
//! * **Subprocess** — `fig09_speedup --tiny` run with `NSC_COMPILE=0`
//!   and `NSC_COMPILE=1` must emit byte-identical stdout and, after
//!   stripping the host-timing object, byte-identical report JSON. This
//!   is the same invariant `scripts/ci.sh`'s compile-smoke stage gates.

use near_stream::ExecMode;
use nsc_bench::{prepare, system_for};
use nsc_workloads::Size;

/// Stripping the plan (forcing the tree walker) must not change one
/// simulated counter or result bit.
#[test]
fn plan_stripped_run_is_bit_identical() {
    let cfg = system_for(Size::Tiny);
    let again = nsc_workloads::all(Size::Tiny);
    for (w, w2) in nsc_workloads::all(Size::Tiny).into_iter().zip(again).take(3) {
        let name = w.name;
        assert_eq!(name, w2.name, "workload registry order is stable");
        let planned = prepare(w);
        assert!(
            planned.compiled.kernels.iter().all(|k| k.plan.is_some()),
            "{name}: plan pass should populate every kernel by default"
        );
        let mut stripped = prepare(w2);
        for k in &mut stripped.compiled.kernels {
            k.plan = None;
        }
        for mode in [ExecMode::Base, ExecMode::Ns, ExecMode::NsDecouple] {
            let (rp, mp) = planned.run_unchecked(mode, &cfg);
            let (rs, ms) = stripped.run_unchecked(mode, &cfg);
            assert_eq!(
                rp.to_table().to_json(),
                rs.to_table().to_json(),
                "{name} under {mode:?}: stats diverged between bytecode and tree walker"
            );
            assert_eq!(
                planned.workload.digest(&mp),
                stripped.workload.digest(&ms),
                "{name} under {mode:?}: result memory diverged"
            );
        }
    }
}

/// Full-harness bit-identity: `NSC_COMPILE=0` vs `1` through the real
/// fig09 binary, stdout and host-stripped JSON both byte-equal.
#[test]
fn fig09_reports_are_identical_with_compile_toggled() {
    let bin = env!("CARGO_BIN_EXE_fig09_speedup");
    let tmp = std::env::temp_dir().join(format!("nsc-compile-identity-{}", std::process::id()));
    let run = |compile: &str| -> (String, String) {
        let dir = tmp.join(format!("c{compile}"));
        std::fs::create_dir_all(&dir).expect("results dir");
        let out = std::process::Command::new(bin)
            .arg("--tiny")
            .env("NSC_COMPILE", compile)
            .env("NSC_RESULTS_DIR", &dir)
            .env("NSC_JOBS", "1")
            .env_remove("NSC_CACHE")
            .output()
            .expect("run fig09_speedup");
        assert!(out.status.success(), "fig09 (NSC_COMPILE={compile}) failed");
        let json = std::fs::read_to_string(dir.join("fig09_speedup.json")).expect("report json");
        // The host object (wall clock, jobs, profile) is the one
        // legitimate delta; it is the report's final key.
        let stripped = json.split(",\"host\":").next().expect("non-empty").to_owned();
        (String::from_utf8(out.stdout).expect("utf8 stdout"), stripped)
    };
    let (out0, json0) = run("0");
    let (out1, json1) = run("1");
    let _ = std::fs::remove_dir_all(&tmp);
    assert_eq!(out0, out1, "fig09 stdout differs between NSC_COMPILE=0 and 1");
    assert_eq!(json0, json1, "fig09 report JSON differs between NSC_COMPILE=0 and 1");
}
