//! Deterministic event queue.

use crate::time::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by time, then insertion sequence.
struct Entry<T> {
    time: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    // Reversed so that the std max-heap pops the *smallest* (time, seq).
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
///
/// Events scheduled for the same cycle are delivered in insertion order, so a
/// simulation driven by this queue is fully reproducible regardless of
/// payload type or hash seeds.
///
/// # Examples
///
/// ```
/// use nsc_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'b');
/// q.push(Cycle(3), 'c'); // same time: FIFO order
/// q.push(Cycle(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    last_popped: Cycle,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: Cycle::ZERO,
        }
    }

    /// Schedules `payload` for delivery at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event: scheduling
    /// into the past indicates a model bug that would silently corrupt
    /// causality.
    pub fn push(&mut self, time: Cycle, payload: T) {
        assert!(
            time >= self.last_popped,
            "event scheduled at {time} but simulation already at {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        let e = self.heap.pop()?;
        self.last_popped = e.time;
        Some((e.time, e.payload))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The timestamp of the most recently popped event (the current time).
    pub fn now(&self) -> Cycle {
        self.last_popped
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("now", &self.last_popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 5u32);
        q.push(Cycle(1), 1);
        q.push(Cycle(3), 3);
        assert_eq!(q.pop(), Some((Cycle(1), 1)));
        assert_eq!(q.pop(), Some((Cycle(3), 3)));
        assert_eq!(q.pop(), Some((Cycle(5), 5)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(Cycle(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn tracks_now_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle(2), ());
        q.push(Cycle(9), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle(2)));
        q.pop();
        assert_eq!(q.now(), Cycle(2));
        q.pop();
        assert_eq!(q.now(), Cycle(9));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled at")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), ());
        q.pop();
        q.push(Cycle(5), ());
    }

    #[test]
    fn interleaved_push_pop_stays_causal() {
        let mut q = EventQueue::new();
        q.push(Cycle(1), 'a');
        let (t, _) = q.pop().unwrap();
        q.push(t + Cycle(4), 'b');
        q.push(t + Cycle(2), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
    }
}
