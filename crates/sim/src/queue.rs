//! Deterministic event queue.
//!
//! Implemented as a *calendar queue*: a ring of time buckets covering a
//! near-future window, spilling far-future events into a fallback heap.
//! Discrete-event simulations of cache/NoC hardware schedule almost
//! every event within a few hundred cycles of "now", so push and pop
//! are amortised O(1) bucket operations instead of the O(log n) sift of
//! a binary heap, while the observable order stays exactly the
//! (time, seq) total order the old heap provided.

use crate::time::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by time, then insertion sequence.
struct Entry<T> {
    time: Cycle,
    seq: u64,
    payload: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (Cycle, u64) {
        (self.time, self.seq)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    // Reversed so that the std max-heap pops the *smallest* (time, seq).
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Default bucket width: 16 cycles per bucket.
const DEFAULT_WIDTH_SHIFT: u32 = 4;
/// Default ring size: 512 buckets, i.e. an 8192-cycle near-future window.
const DEFAULT_BUCKETS: usize = 512;

/// A time-ordered event queue with deterministic tie-breaking.
///
/// Events scheduled for the same cycle are delivered in insertion order, so a
/// simulation driven by this queue is fully reproducible regardless of
/// payload type or hash seeds.
///
/// Internally a calendar queue: events within `buckets × 2^width_shift`
/// cycles of the last popped event land in a ring bucket indexed by
/// `(time >> width_shift) % buckets`; later events wait in an overflow
/// heap and migrate into the ring as the clock advances. Each ring
/// "day" (one bucket-width of cycles) holds exactly one day's events
/// — two in-window days can never collide on a bucket — and a bucket
/// is sorted lazily the first time the pop scan reaches it, with
/// same-day pushes binary-inserted afterwards. Every pop therefore
/// still delivers the global minimum `(time, seq)`, bit-identical to
/// the previous `BinaryHeap` implementation.
///
/// # Examples
///
/// ```
/// use nsc_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'b');
/// q.push(Cycle(3), 'c'); // same time: FIFO order
/// q.push(Cycle(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<T> {
    /// Ring of near-future buckets; `buckets[day % n]` holds exactly the
    /// entries of `day` for in-window days.
    buckets: Vec<Vec<Entry<T>>>,
    /// log2 of the bucket width in cycles.
    width_shift: u32,
    /// Entries beyond the ring window, keyed like the old heap.
    overflow: BinaryHeap<Entry<T>>,
    /// Number of entries currently in `buckets` (not `overflow`).
    in_ring: usize,
    /// Day (`time >> width_shift`) of the last popped event; every live
    /// ring entry has a day in `[cur_day, cur_day + buckets.len())`.
    cur_day: u64,
    /// The single day whose bucket is currently sorted (descending by
    /// `(time, seq)`, so the minimum pops from the back).
    sorted_day: Option<u64>,
    next_seq: u64,
    last_popped: Cycle,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the default geometry (512 buckets of
    /// 16 cycles).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_WIDTH_SHIFT, DEFAULT_BUCKETS)
    }

    /// Creates an empty queue with `n_buckets` ring buckets of
    /// `2^width_shift` cycles each. Exposed for tuning experiments and
    /// property tests; any geometry produces the same pop order.
    pub fn with_geometry(width_shift: u32, n_buckets: usize) -> Self {
        assert!(n_buckets >= 1, "calendar queue needs at least one bucket");
        assert!(width_shift < 32, "bucket width 2^{width_shift} is absurd");
        EventQueue {
            buckets: (0..n_buckets).map(|_| Vec::new()).collect(),
            width_shift,
            overflow: BinaryHeap::new(),
            in_ring: 0,
            cur_day: 0,
            sorted_day: None,
            next_seq: 0,
            last_popped: Cycle::ZERO,
        }
    }

    #[inline]
    fn day_of(&self, time: Cycle) -> u64 {
        time.0 >> self.width_shift
    }

    /// Upper bound (exclusive) of the ring window in days.
    #[inline]
    fn horizon(&self) -> u64 {
        self.cur_day.saturating_add(self.buckets.len() as u64)
    }

    /// Places an entry in its ring bucket, preserving sortedness if the
    /// pop scan already sorted that day's bucket.
    fn ring_insert(&mut self, entry: Entry<T>) {
        let day = self.day_of(entry.time);
        debug_assert!(day >= self.cur_day && day < self.horizon());
        let idx = (day % self.buckets.len() as u64) as usize;
        let bucket = &mut self.buckets[idx];
        if self.sorted_day == Some(day) {
            // Descending by (time, seq): strictly-greater entries first.
            let key = entry.key();
            let at = bucket.partition_point(|e| e.key() > key);
            bucket.insert(at, entry);
        } else {
            bucket.push(entry);
        }
        self.in_ring += 1;
    }

    /// Moves overflow entries that fell inside the window into the ring.
    fn migrate_overflow(&mut self) {
        while let Some(top) = self.overflow.peek() {
            if self.day_of(top.time) >= self.horizon() {
                break;
            }
            let e = self.overflow.pop().expect("peeked entry");
            self.ring_insert(e);
        }
    }

    /// Schedules `payload` for delivery at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event: scheduling
    /// into the past indicates a model bug that would silently corrupt
    /// causality.
    pub fn push(&mut self, time: Cycle, payload: T) {
        assert!(
            time >= self.last_popped,
            "event scheduled at {time} but simulation already at {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, payload };
        if self.day_of(time) < self.horizon() {
            self.ring_insert(entry);
        } else {
            self.overflow.push(entry);
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        if self.in_ring == 0 {
            // Fast-forward the calendar to the overflow's first day; the
            // scan below then starts at a populated bucket instead of
            // walking a possibly huge gap of empty days.
            let first = self.overflow.peek()?.time;
            self.cur_day = self.day_of(first);
            self.sorted_day = None;
            self.migrate_overflow();
        }
        // Every ring entry's day is in [cur_day, horizon), so this scan
        // terminates within one lap of the ring.
        let mut day = self.cur_day;
        loop {
            let idx = (day % self.buckets.len() as u64) as usize;
            if !self.buckets[idx].is_empty() {
                if self.sorted_day != Some(day) {
                    self.buckets[idx].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                    self.sorted_day = Some(day);
                }
                let e = self.buckets[idx].pop().expect("non-empty bucket");
                self.in_ring -= 1;
                self.last_popped = e.time;
                if day != self.cur_day {
                    self.cur_day = day;
                    // The window grew on the right: admit any overflow
                    // entries that now fit, so the ring keeps holding
                    // everything nearer than the overflow minimum.
                    self.migrate_overflow();
                }
                return Some((e.time, e.payload));
            }
            day += 1;
            debug_assert!(day < self.horizon(), "ring invariant violated");
        }
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        let ring_min = if self.in_ring == 0 {
            None
        } else {
            let mut day = self.cur_day;
            loop {
                let idx = (day % self.buckets.len() as u64) as usize;
                let bucket = &self.buckets[idx];
                if !bucket.is_empty() {
                    break if self.sorted_day == Some(day) {
                        bucket.last().map(|e| e.time)
                    } else {
                        bucket.iter().map(|e| e.time).min()
                    };
                }
                day += 1;
            }
        };
        let over_min = self.overflow.peek().map(|e| e.time);
        match (ring_min, over_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.in_ring + self.overflow.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The timestamp of the most recently popped event (the current time).
    pub fn now(&self) -> Cycle {
        self.last_popped
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("now", &self.last_popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 5u32);
        q.push(Cycle(1), 1);
        q.push(Cycle(3), 3);
        assert_eq!(q.pop(), Some((Cycle(1), 1)));
        assert_eq!(q.pop(), Some((Cycle(3), 3)));
        assert_eq!(q.pop(), Some((Cycle(5), 5)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(Cycle(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn tracks_now_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle(2), ());
        q.push(Cycle(9), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle(2)));
        q.pop();
        assert_eq!(q.now(), Cycle(2));
        q.pop();
        assert_eq!(q.now(), Cycle(9));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled at")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), ());
        q.pop();
        q.push(Cycle(5), ());
    }

    #[test]
    fn interleaved_push_pop_stays_causal() {
        let mut q = EventQueue::new();
        q.push(Cycle(1), 'a');
        let (t, _) = q.pop().unwrap();
        q.push(t + Cycle(4), 'b');
        q.push(t + Cycle(2), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        // A 2-bucket × 2-cycle ring forces nearly everything through the
        // overflow heap and its migration path.
        let mut q = EventQueue::with_geometry(1, 2);
        q.push(Cycle(1_000_000), 'z');
        q.push(Cycle(3), 'a');
        q.push(Cycle(500), 'm');
        assert_eq!(q.peek_time(), Some(Cycle(3)));
        assert_eq!(q.pop(), Some((Cycle(3), 'a')));
        // After the jump to cycle 500 the window has moved; 'z' stays in
        // overflow until its day comes.
        assert_eq!(q.pop(), Some((Cycle(500), 'm')));
        q.push(Cycle(500), 'n'); // same-cycle push after a pop
        assert_eq!(q.pop(), Some((Cycle(500), 'n')));
        assert_eq!(q.pop(), Some((Cycle(1_000_000), 'z')));
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_ties_survive_overflow_migration() {
        let mut q = EventQueue::with_geometry(1, 2);
        // All at the same far-future cycle: pushed into overflow, then
        // migrated together. Insertion order must survive.
        for i in 0..50u32 {
            q.push(Cycle(9999), i);
        }
        for i in 0..50u32 {
            assert_eq!(q.pop(), Some((Cycle(9999), i)), "tie {i} out of order");
        }
    }

    #[test]
    fn matches_heap_reference_on_random_schedule() {
        use crate::rng::Rng;
        // Reference model: the exact (time, seq) total order.
        let mut rng = Rng::seed_from_u64(0x5EED_CA1E);
        for (shift, nb) in [(DEFAULT_WIDTH_SHIFT, DEFAULT_BUCKETS), (1, 2), (0, 1), (3, 8)] {
            let mut q = EventQueue::with_geometry(shift, nb);
            let mut reference: Vec<(Cycle, u64)> = Vec::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            for _ in 0..2000 {
                if !reference.is_empty() && rng.next_u64().is_multiple_of(3) {
                    reference.sort();
                    let want = reference.remove(0);
                    let got = q.pop().expect("queue and model agree on emptiness");
                    assert_eq!((got.0, got.1), want, "geometry ({shift},{nb})");
                    now = want.0 .0;
                } else {
                    // Mostly near-future, occasionally far-future times.
                    let delta = match rng.next_u64() % 10 {
                        0 => rng.next_u64() % 100_000,
                        1..=3 => 0,
                        _ => rng.next_u64() % 64,
                    };
                    let t = Cycle(now + delta);
                    q.push(t, seq);
                    reference.push((t, seq));
                    seq += 1;
                }
            }
            reference.sort();
            for want in reference {
                let got = q.pop().expect("drain");
                assert_eq!((got.0, got.1), want, "drain, geometry ({shift},{nb})");
            }
            assert!(q.pop().is_none());
        }
    }
}
