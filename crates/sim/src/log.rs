//! Structured, leveled logging with a bounded flight recorder.
//!
//! Dependency-free sibling of the `log`/`tracing` crates, scoped to what
//! this workspace needs: a process-wide level filter, JSON-line records,
//! and a bounded in-memory ring (the *flight recorder*) that keeps the
//! most recent records so they can be drained after the fact — `nscd`
//! exposes the drain as its `logs` op.
//!
//! # Level filter
//!
//! The filter is read once from `NSC_LOG` (`off`, `error`, `warn`,
//! `info`, `debug`, `trace`; unset means *off*) and cached in an atomic.
//! Binaries that want logging on by default (the daemon) call
//! [`init`] with their preferred fallback before the first log call.
//! Set `NSC_LOG_STDERR=1` to additionally echo records to stderr as
//! they happen.
//!
//! # Cost model
//!
//! Same discipline as [`crate::trace`] and [`crate::metrics`]: a
//! disabled call site is one relaxed atomic load and a branch — the
//! message closure never runs, nothing allocates (asserted by the
//! `metrics_noalloc` integration test). Enabled records take a short
//! mutex on the ring; log sites live on the serving path, never inside
//! the simulation, so sim results are byte-identical at any level.
//!
//! # Examples
//!
//! ```
//! use nsc_sim::log::{self, Level};
//!
//! log::set_level(Some(Level::Debug));
//! log::debug("doc", || format!("answer={}", 42));
//! let (records, dropped) = log::drain();
//! assert!(records.iter().any(|r| r.msg == "answer=42"));
//! assert_eq!(dropped, 0);
//! log::set_level(None); // leave it off for the rest of the doc tests
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Severity, ordered so that a level filter admits everything at or
/// below its numeric value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error = 1,
    /// Degraded but continuing (e.g. a malformed request line).
    Warn = 2,
    /// Lifecycle events: startup, shutdown, per-request completion.
    Info = 3,
    /// Per-phase detail useful when chasing a latency report.
    Debug = 4,
    /// Everything, including per-line protocol chatter.
    Trace = 5,
}

impl Level {
    /// Lower-case label used in rendered records and `NSC_LOG`.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses an `NSC_LOG` value. `Some(None)` means explicitly off;
    /// `None` means unrecognized.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "none" => Some(None),
            "error" | "1" => Some(Some(Level::Error)),
            "warn" | "warning" | "2" => Some(Some(Level::Warn)),
            "info" | "3" => Some(Some(Level::Info)),
            "debug" | "4" => Some(Some(Level::Debug)),
            "trace" | "5" => Some(Some(Level::Trace)),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }
}

/// Sentinel meaning "not initialized yet": the first log call resolves
/// `NSC_LOG` and replaces it.
const UNINIT: u8 = 0xFF;
const OFF: u8 = 0;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);
/// 0 = no stderr echo, 1 = echo; latched together with the level.
static ECHO: AtomicU8 = AtomicU8::new(0);

#[cold]
fn init_from_env(fallback: u8) -> u8 {
    let v = match std::env::var("NSC_LOG").ok().as_deref().and_then(Level::parse) {
        Some(Some(l)) => l as u8,
        Some(None) => OFF,
        // Unset or unrecognized: the caller's fallback.
        None => fallback,
    };
    let echo = std::env::var("NSC_LOG_STDERR").map(|s| s == "1").unwrap_or(false);
    ECHO.store(echo as u8, Ordering::Relaxed);
    LEVEL.store(v, Ordering::Relaxed);
    v
}

/// Resolves the level filter, initializing from `NSC_LOG` on first use
/// with `fallback` when the variable is unset. Call early from binaries
/// that want a non-off default (e.g. `nscd` passes `Info`).
pub fn init(fallback: Option<Level>) {
    if LEVEL.load(Ordering::Relaxed) == UNINIT {
        init_from_env(fallback.map_or(OFF, |l| l as u8));
    }
}

/// Forces the level filter, overriding `NSC_LOG` (tests, client tools).
pub fn set_level(level: Option<Level>) {
    LEVEL.store(level.map_or(OFF, |l| l as u8), Ordering::Relaxed);
}

/// The currently effective filter (`None` = off).
pub fn level() -> Option<Level> {
    let mut v = LEVEL.load(Ordering::Relaxed);
    if v == UNINIT {
        v = init_from_env(OFF);
    }
    Level::from_u8(v)
}

/// Fast-path check: would a record at `level` be admitted?
#[inline]
pub fn enabled(level: Level) -> bool {
    let v = LEVEL.load(Ordering::Relaxed);
    if v == UNINIT {
        return init_from_env(OFF) >= level as u8;
    }
    v >= level as u8
}

/// One captured record.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Monotonic sequence number, never reused (gaps mean drops).
    pub seq: u64,
    /// Capture time, µs since the process span epoch ([`crate::span::now_us`]).
    pub ts_us: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem tag (`serve`, `nscd`, ...).
    pub target: &'static str,
    /// Rendered message.
    pub msg: String,
}

impl LogRecord {
    /// Renders the record as one line of JSON.
    pub fn render(&self) -> String {
        format!(
            "{{\"seq\":{},\"ts_us\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"}}",
            self.seq,
            self.ts_us,
            self.level.label(),
            self.target,
            crate::json::escape(&self.msg)
        )
    }
}

struct Flight {
    next_seq: u64,
    /// Records evicted (ring full) since the last drain.
    dropped: u64,
    ring: VecDeque<LogRecord>,
    cap: usize,
}

static FLIGHT: OnceLock<Mutex<Flight>> = OnceLock::new();

fn flight() -> &'static Mutex<Flight> {
    FLIGHT.get_or_init(|| {
        let cap = std::env::var("NSC_LOG_CAP")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map(|c| c.clamp(16, 1 << 20))
            .unwrap_or(4096);
        Mutex::new(Flight { next_seq: 0, dropped: 0, ring: VecDeque::with_capacity(cap.min(1024)), cap })
    })
}

#[cold]
fn record(level: Level, target: &'static str, msg: String) {
    let ts_us = crate::span::now_us();
    let mut fl = flight().lock().unwrap_or_else(|e| e.into_inner());
    let seq = fl.next_seq;
    fl.next_seq += 1;
    let rec = LogRecord { seq, ts_us, level, target, msg };
    if ECHO.load(Ordering::Relaxed) == 1 {
        eprintln!("{}", rec.render());
    }
    if fl.ring.len() == fl.cap {
        fl.ring.pop_front();
        fl.dropped += 1;
    }
    fl.ring.push_back(rec);
}

/// Logs through a deferred closure: when the level filter rejects the
/// record, `f` never runs and nothing allocates.
#[inline]
pub fn log(level: Level, target: &'static str, f: impl FnOnce() -> String) {
    if enabled(level) {
        record(level, target, f());
    }
}

/// [`log`] at [`Level::Error`].
#[inline]
pub fn error(target: &'static str, f: impl FnOnce() -> String) {
    log(Level::Error, target, f);
}

/// [`log`] at [`Level::Warn`].
#[inline]
pub fn warn(target: &'static str, f: impl FnOnce() -> String) {
    log(Level::Warn, target, f);
}

/// [`log`] at [`Level::Info`].
#[inline]
pub fn info(target: &'static str, f: impl FnOnce() -> String) {
    log(Level::Info, target, f);
}

/// [`log`] at [`Level::Debug`].
#[inline]
pub fn debug(target: &'static str, f: impl FnOnce() -> String) {
    log(Level::Debug, target, f);
}

/// [`log`] at [`Level::Trace`].
#[inline]
pub fn trace(target: &'static str, f: impl FnOnce() -> String) {
    log(Level::Trace, target, f);
}

/// Drains the flight recorder: returns every buffered record (oldest
/// first) and the number of records evicted since the previous drain.
pub fn drain() -> (Vec<LogRecord>, u64) {
    let mut fl = flight().lock().unwrap_or_else(|e| e.into_inner());
    let dropped = std::mem::take(&mut fl.dropped);
    (fl.ring.drain(..).collect(), dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Level state is process-global; keep everything that mutates it in
    // one test to avoid cross-test interference.
    #[test]
    fn filter_ring_and_render() {
        set_level(Some(Level::Info));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        assert_eq!(level(), Some(Level::Info));

        let _ = drain(); // isolate from records other tests may have left
        let mut ran = false;
        debug("test", || {
            ran = true;
            String::from("must not run")
        });
        assert!(!ran, "closure ran below the level filter");
        info("test", || format!("served rid={:x}", 0xBEEFu32));
        warn("test", || "quoted \"msg\"".to_string());

        let (recs, dropped) = drain();
        assert_eq!(dropped, 0);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].level, Level::Info);
        assert_eq!(recs[0].target, "test");
        assert_eq!(recs[0].msg, "served rid=beef");
        assert!(recs[1].seq > recs[0].seq);
        let line = recs[1].render();
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\\\"msg\\\""), "render must escape quotes: {line}");
        crate::json::parse(&line).expect("rendered record is valid JSON");

        // Drain empties the ring.
        assert_eq!(drain().0.len(), 0);
        set_level(None);
        assert!(!enabled(Level::Error));
    }

    #[test]
    fn parse_accepts_all_spellings() {
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse(""), Some(None));
        assert_eq!(Level::parse("WARN"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("trace"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("5"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn labels_roundtrip() {
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace] {
            assert_eq!(Level::parse(l.label()), Some(Some(l)));
        }
    }
}
