//! Discrete-event simulation kernel for the near-stream computing suite.
//!
//! This crate provides the time base, deterministic event queue, bandwidth
//! resources and statistics utilities shared by every timing model in the
//! workspace (NoC, caches, DRAM, cores and stream engines).
//!
//! # Examples
//!
//! ```
//! use nsc_sim::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle(10), "late");
//! q.push(Cycle(5), "early");
//! assert_eq!(q.pop(), Some((Cycle(5), "early")));
//! assert_eq!(q.pop(), Some((Cycle(10), "late")));
//! ```

pub mod cache;
pub mod error;
pub mod fault;
pub mod json;
pub mod log;
pub mod metrics;
pub mod pack;
pub mod pool;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod span;
pub mod stats;
pub mod time;
pub mod timeline;
pub mod trace;

pub use error::SimError;
pub use queue::EventQueue;
pub use resource::Resource;
pub use stats::{Counter, Histogram, StatsTable, Summary};
pub use time::Cycle;
