//! Live metrics: a dependency-free sharded registry of monotonic
//! counters, high-water gauges, fixed-geometry histograms and a
//! cycle-bucketed self-profiler.
//!
//! The registry follows the same zero-cost-when-disabled discipline as
//! [`crate::trace`] and [`crate::fault`]: a process-wide activation
//! count ([`ACTIVE`]) gates a thread-local [`Registry`] shard. When no
//! registry is installed anywhere, every recording call is a single
//! relaxed atomic load and performs **no allocation** (the no-op path is
//! covered by an allocation-counting regression test). When a shard is
//! installed, recording indexes fixed arrays by enum discriminant —
//! still no allocation, no hashing, no string formatting on the hot
//! path.
//!
//! Determinism contract: parallel sweeps install one fresh shard per
//! run on the worker, then merge the shards on the submitting thread
//! **in submission order** (the same discipline as [`crate::trace::absorb`]
//! and [`crate::fault::absorb`]). All merge operations commute and
//! saturate, so a merged snapshot is byte-identical for any `NSC_JOBS`.
//!
//! Long-running services (the `nscd` daemon) additionally keep a
//! process-global registry fed via [`absorb_global`]; that one is meant
//! for live introspection, not for report determinism.
//!
//! Snapshots serialize with [`Registry::to_json`] under schema
//! `nsc-metrics-v1` (see DESIGN.md §6.10).
//!
//! # Examples
//!
//! ```
//! use nsc_sim::metrics::{self, Metric, Registry};
//!
//! metrics::install(Registry::new());
//! metrics::count(Metric::MemL1Hits);
//! metrics::add(Metric::NocBytes, 64);
//! let snap = metrics::uninstall().unwrap();
//! assert_eq!(snap.count(Metric::MemL1Hits), 1);
//! assert_eq!(snap.count(Metric::NocBytes), 64);
//! assert!(snap.to_json().starts_with("{\"schema\":\"nsc-metrics-v1\""));
//! ```

use crate::stats::Histogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Schema identifier embedded in every serialized snapshot.
pub const SCHEMA: &str = "nsc-metrics-v1";

/// Monotonic event counters, one per instrumented event in the stack.
///
/// Labels are dotted `component.event` paths; the numeric discriminant
/// doubles as the index into [`Registry`]'s counter array, so recording
/// is a bounds-check-free array add.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Engine iterations executed (event-loop pops).
    EngineIterations,
    /// Elements dispatched in-core as plain accesses.
    DispatchCoreAccess,
    /// Elements dispatched in-core with prefetch assist.
    DispatchCorePrefetch,
    /// Elements dispatched as in-core float loads.
    DispatchFloatLoad,
    /// Elements offloaded to the near-stream substrate.
    DispatchNearStream,
    /// Iterations offloaded wholesale (per-iteration style).
    DispatchPerIteration,
    /// Cache lines walked by chained-line offloads.
    DispatchChainedLine,
    /// Offload handshake retries (NACK + backoff).
    OffloadRetries,
    /// Offloads that fell back to in-core execution.
    OffloadFallbacks,
    /// Alias-filter flushes (mis-speculation drains).
    AliasFlushes,
    /// Prefetch-element-buffer flushes.
    PebFlushes,
    /// Range-sync drain-and-replay events.
    RangeSyncReplays,
    /// L1 hits.
    MemL1Hits,
    /// L1 misses.
    MemL1Misses,
    /// L2 hits.
    MemL2Hits,
    /// L2 misses.
    MemL2Misses,
    /// L3 hits.
    MemL3Hits,
    /// L3 misses.
    MemL3Misses,
    /// DRAM read accesses.
    MemDramReads,
    /// DRAM writebacks.
    MemDramWritebacks,
    /// Coherence invalidations sent to private caches.
    MemInvalidations,
    /// Dirty private-cache lines written back on invalidation.
    MemPrivateWritebacks,
    /// Prefetch fills installed into the cache.
    MemPrefetchFills,
    /// Demand accesses satisfied by an earlier prefetch.
    MemPrefetchHits,
    /// Atomic read-modify-writes executed at the L3 banks.
    MemL3Atomics,
    /// Transient read-error retries (fault injection).
    MemReadRetries,
    /// Data-class messages routed on the mesh.
    NocMsgsData,
    /// Control-class messages routed on the mesh.
    NocMsgsControl,
    /// Offloaded-class messages routed on the mesh.
    NocMsgsOffloaded,
    /// Payload bytes injected into the mesh.
    NocBytes,
    /// Payload bytes × hops travelled (the paper's traffic metric).
    NocByteHops,
    /// Timeout retransmissions after injected drops.
    NocRetransmits,
    /// Result-cache lookups that hit.
    ResultCacheHits,
    /// Result-cache lookups that missed.
    ResultCacheMisses,
    /// Result-cache records stored.
    ResultCacheStores,
    /// Jobs submitted to the shared thread pool.
    PoolJobs,
    /// Faults fired by the deterministic injector.
    FaultsInjected,
    /// Requests parsed by the nscd daemon.
    ServeRequests,
    /// Run requests completed by the daemon.
    ServeRuns,
    /// Daemon runs served from the result cache.
    ServeRunsCached,
    /// Daemon requests answered with an error.
    ServeErrors,
    /// Run requests shed by overload protection (admission queue full
    /// with a cold cache, draining for shutdown, or client gone before
    /// dequeue). Deadline sheds are counted separately.
    ServeShed,
    /// Run requests shed because their deadline expired before the
    /// simulation started.
    ServeDeadlineExceeded,
    /// Connections refused at accept because `NSC_MAX_CONNS` live
    /// connections already existed.
    ServeConnsRejected,
    /// Resubmitted `request_id`s answered by replaying the stored
    /// response instead of re-simulating.
    ServeDedupReplays,
    /// Result-cache lookups served by the in-memory hot tier.
    CacheHotHits,
    /// Hot-tier lookups that fell through to the cold tier (whether or
    /// not disk then hit).
    CacheHotMisses,
    /// Hot-tier records expelled to stay within `NSC_CACHE_MEM_BYTES`.
    CacheHotEvictions,
    /// Result-cache lookups served by the on-disk cold tier.
    CacheColdHits,
    /// Lookups no tier could answer (the run had to simulate).
    CacheColdMisses,
    /// Records written durably into the cold tier.
    CacheColdStores,
    /// Cold-tier files expelled to stay within `NSC_CACHE_DISK_BYTES`.
    CacheColdEvictions,
}

impl Metric {
    /// Every counter, in declaration (= index) order.
    pub const ALL: [Metric; 52] = [
        Metric::EngineIterations,
        Metric::DispatchCoreAccess,
        Metric::DispatchCorePrefetch,
        Metric::DispatchFloatLoad,
        Metric::DispatchNearStream,
        Metric::DispatchPerIteration,
        Metric::DispatchChainedLine,
        Metric::OffloadRetries,
        Metric::OffloadFallbacks,
        Metric::AliasFlushes,
        Metric::PebFlushes,
        Metric::RangeSyncReplays,
        Metric::MemL1Hits,
        Metric::MemL1Misses,
        Metric::MemL2Hits,
        Metric::MemL2Misses,
        Metric::MemL3Hits,
        Metric::MemL3Misses,
        Metric::MemDramReads,
        Metric::MemDramWritebacks,
        Metric::MemInvalidations,
        Metric::MemPrivateWritebacks,
        Metric::MemPrefetchFills,
        Metric::MemPrefetchHits,
        Metric::MemL3Atomics,
        Metric::MemReadRetries,
        Metric::NocMsgsData,
        Metric::NocMsgsControl,
        Metric::NocMsgsOffloaded,
        Metric::NocBytes,
        Metric::NocByteHops,
        Metric::NocRetransmits,
        Metric::ResultCacheHits,
        Metric::ResultCacheMisses,
        Metric::ResultCacheStores,
        Metric::PoolJobs,
        Metric::FaultsInjected,
        Metric::ServeRequests,
        Metric::ServeRuns,
        Metric::ServeRunsCached,
        Metric::ServeErrors,
        Metric::ServeShed,
        Metric::ServeDeadlineExceeded,
        Metric::ServeConnsRejected,
        Metric::ServeDedupReplays,
        Metric::CacheHotHits,
        Metric::CacheHotMisses,
        Metric::CacheHotEvictions,
        Metric::CacheColdHits,
        Metric::CacheColdMisses,
        Metric::CacheColdStores,
        Metric::CacheColdEvictions,
    ];

    /// Dotted metric name, e.g. `"mem.l1.hits"`.
    pub fn label(self) -> &'static str {
        match self {
            Metric::EngineIterations => "engine.iterations",
            Metric::DispatchCoreAccess => "engine.dispatch.core_access",
            Metric::DispatchCorePrefetch => "engine.dispatch.core_prefetch",
            Metric::DispatchFloatLoad => "engine.dispatch.float_load",
            Metric::DispatchNearStream => "engine.dispatch.near_stream",
            Metric::DispatchPerIteration => "engine.dispatch.per_iteration",
            Metric::DispatchChainedLine => "engine.dispatch.chained_line",
            Metric::OffloadRetries => "engine.offload.retries",
            Metric::OffloadFallbacks => "engine.offload.fallbacks",
            Metric::AliasFlushes => "engine.alias_flushes",
            Metric::PebFlushes => "engine.peb_flushes",
            Metric::RangeSyncReplays => "engine.rangesync_replays",
            Metric::MemL1Hits => "mem.l1.hits",
            Metric::MemL1Misses => "mem.l1.misses",
            Metric::MemL2Hits => "mem.l2.hits",
            Metric::MemL2Misses => "mem.l2.misses",
            Metric::MemL3Hits => "mem.l3.hits",
            Metric::MemL3Misses => "mem.l3.misses",
            Metric::MemDramReads => "mem.dram.reads",
            Metric::MemDramWritebacks => "mem.dram.writebacks",
            Metric::MemInvalidations => "mem.coherence.invalidations",
            Metric::MemPrivateWritebacks => "mem.coherence.private_writebacks",
            Metric::MemPrefetchFills => "mem.prefetch.fills",
            Metric::MemPrefetchHits => "mem.prefetch.hits",
            Metric::MemL3Atomics => "mem.l3.atomics",
            Metric::MemReadRetries => "mem.read_retries",
            Metric::NocMsgsData => "noc.msgs.data",
            Metric::NocMsgsControl => "noc.msgs.control",
            Metric::NocMsgsOffloaded => "noc.msgs.offloaded",
            Metric::NocBytes => "noc.bytes",
            Metric::NocByteHops => "noc.byte_hops",
            Metric::NocRetransmits => "noc.retransmits",
            Metric::ResultCacheHits => "result_cache.hits",
            Metric::ResultCacheMisses => "result_cache.misses",
            Metric::ResultCacheStores => "result_cache.stores",
            Metric::PoolJobs => "pool.jobs",
            Metric::FaultsInjected => "fault.injected",
            Metric::ServeRequests => "serve.requests",
            Metric::ServeRuns => "serve.runs",
            Metric::ServeRunsCached => "serve.runs_cached",
            Metric::ServeErrors => "serve.errors",
            Metric::ServeShed => "serve.shed",
            Metric::ServeDeadlineExceeded => "serve.deadline_exceeded",
            Metric::ServeConnsRejected => "serve.conns_rejected",
            Metric::ServeDedupReplays => "serve.dedup_replays",
            Metric::CacheHotHits => "cache.hot.hits",
            Metric::CacheHotMisses => "cache.hot.misses",
            Metric::CacheHotEvictions => "cache.hot.evictions",
            Metric::CacheColdHits => "cache.cold.hits",
            Metric::CacheColdMisses => "cache.cold.misses",
            Metric::CacheColdStores => "cache.cold.stores",
            Metric::CacheColdEvictions => "cache.cold.evictions",
        }
    }

    /// Index into the registry's counter array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// High-water-mark gauges. Merging takes the max, which commutes, so
/// gauges keep the determinism contract as long as the recorded values
/// themselves are deterministic (e.g. submitted batch sizes rather than
/// racy live queue lengths).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Largest batch of jobs outstanding on the shared pool.
    PoolQueueDepth,
    /// Most daemon runs simultaneously in flight.
    ServeInFlight,
    /// Deepest the daemon's bounded admission queue ever got (admitted
    /// runs not yet delivered; capped by `NSC_QUEUE_CAP`).
    ServeQueueDepth,
}

impl Gauge {
    /// Every gauge, in declaration (= index) order.
    pub const ALL: [Gauge; 3] = [Gauge::PoolQueueDepth, Gauge::ServeInFlight, Gauge::ServeQueueDepth];

    /// Dotted gauge name.
    pub fn label(self) -> &'static str {
        match self {
            Gauge::PoolQueueDepth => "pool.queue_depth_hwm",
            Gauge::ServeInFlight => "serve.in_flight_hwm",
            Gauge::ServeQueueDepth => "serve.queue_depth_hwm",
        }
    }

    /// Index into the registry's gauge array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Distribution metrics with fixed per-variant bucket geometry (so any
/// two shards of the same variant merge bucket-by-bucket).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Mesh message latency in cycles.
    NocLatencyCycles,
    /// Daemon per-run wall time in milliseconds.
    ServeRunMs,
    /// Daemon per-request pool queue wait in microseconds (from the
    /// request's `queue_wait` span).
    ServeQueueUs,
    /// Daemon per-request total wall time in microseconds (the span
    /// tree's root duration).
    ServeTotalUs,
}

impl Hist {
    /// Every histogram, in declaration (= index) order.
    pub const ALL: [Hist; 4] = [
        Hist::NocLatencyCycles,
        Hist::ServeRunMs,
        Hist::ServeQueueUs,
        Hist::ServeTotalUs,
    ];

    /// Dotted histogram name.
    pub fn label(self) -> &'static str {
        match self {
            Hist::NocLatencyCycles => "noc.latency_cycles",
            Hist::ServeRunMs => "serve.run_ms",
            Hist::ServeQueueUs => "serve.queue_us",
            Hist::ServeTotalUs => "serve.total_us",
        }
    }

    /// `(bucket_width, buckets)` — fixed per variant.
    pub fn geometry(self) -> (f64, usize) {
        match self {
            Hist::NocLatencyCycles => (8.0, 64),
            Hist::ServeRunMs => (10.0, 64),
            Hist::ServeQueueUs => (50.0, 64),
            Hist::ServeTotalUs => (500.0, 64),
        }
    }

    /// Index into the registry's histogram array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    fn new_hist(self) -> Histogram {
        let (w, n) = self.geometry();
        Histogram::new(w, n)
    }
}

/// Self-profiler attribution kinds: where the event loop spends its
/// simulated cycles, per event kind and per component.
///
/// The profiler deliberately accounts in **cycles** (the deterministic
/// currency of the timing models), not host wall clocks — reports later
/// scale the per-kind cycle share by the harness's measured wall time
/// to estimate host milliseconds without ever reading a clock on the
/// sim path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Prof {
    /// In-core element accesses.
    EngineCoreAccess,
    /// In-core accesses with prefetch assist.
    EngineCorePrefetch,
    /// In-core float loads.
    EngineFloatLoad,
    /// Near-stream offloaded elements.
    EngineNearStream,
    /// Whole-iteration offloads.
    EnginePerIteration,
    /// Chained-line offload walks.
    EngineChainedLine,
    /// L1 service time.
    MemL1,
    /// L2 service time.
    MemL2,
    /// L3 service time.
    MemL3,
    /// DRAM service time.
    MemDram,
    /// Mesh latency, data class.
    NocData,
    /// Mesh latency, control class.
    NocControl,
    /// Mesh latency, offloaded class.
    NocOffloaded,
    /// Synchronization-boundary waits.
    SyncBoundary,
    /// Near-cache (SE_L3) compute occupancy.
    ScmCompute,
}

impl Prof {
    /// Every profiler kind, in declaration (= index) order.
    pub const ALL: [Prof; 15] = [
        Prof::EngineCoreAccess,
        Prof::EngineCorePrefetch,
        Prof::EngineFloatLoad,
        Prof::EngineNearStream,
        Prof::EnginePerIteration,
        Prof::EngineChainedLine,
        Prof::MemL1,
        Prof::MemL2,
        Prof::MemL3,
        Prof::MemDram,
        Prof::NocData,
        Prof::NocControl,
        Prof::NocOffloaded,
        Prof::SyncBoundary,
        Prof::ScmCompute,
    ];

    /// Event-kind label, e.g. `"engine.near_stream"`.
    pub fn label(self) -> &'static str {
        match self {
            Prof::EngineCoreAccess => "engine.core_access",
            Prof::EngineCorePrefetch => "engine.core_prefetch",
            Prof::EngineFloatLoad => "engine.float_load",
            Prof::EngineNearStream => "engine.near_stream",
            Prof::EnginePerIteration => "engine.per_iteration",
            Prof::EngineChainedLine => "engine.chained_line",
            Prof::MemL1 => "mem.l1",
            Prof::MemL2 => "mem.l2",
            Prof::MemL3 => "mem.l3",
            Prof::MemDram => "mem.dram",
            Prof::NocData => "noc.data",
            Prof::NocControl => "noc.control",
            Prof::NocOffloaded => "noc.offloaded",
            Prof::SyncBoundary => "sync.boundary",
            Prof::ScmCompute => "scm.compute",
        }
    }

    /// Component the kind belongs to (`engine`/`mem`/`noc`/`sync`/`scm`).
    pub fn component(self) -> &'static str {
        match self {
            Prof::EngineCoreAccess
            | Prof::EngineCorePrefetch
            | Prof::EngineFloatLoad
            | Prof::EngineNearStream
            | Prof::EnginePerIteration
            | Prof::EngineChainedLine => "engine",
            Prof::MemL1 | Prof::MemL2 | Prof::MemL3 | Prof::MemDram => "mem",
            Prof::NocData | Prof::NocControl | Prof::NocOffloaded => "noc",
            Prof::SyncBoundary => "sync",
            Prof::ScmCompute => "scm",
        }
    }

    /// Index into the registry's profiler array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One self-profiler accumulator: how many events of a kind fired and
/// how many simulated cycles they accounted for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfSlot {
    /// Number of events attributed to this kind.
    pub events: u64,
    /// Simulated cycles attributed to this kind.
    pub cycles: u64,
}

/// A metrics shard: fixed arrays indexed by the enum discriminants
/// above. Cloneable, mergeable, and serializable as `nsc-metrics-v1`.
#[derive(Clone, Debug, PartialEq)]
pub struct Registry {
    counters: [u64; Metric::ALL.len()],
    gauges: [f64; Gauge::ALL.len()],
    hists: [Histogram; Hist::ALL.len()],
    prof: [ProfSlot; Prof::ALL.len()],
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an all-zero registry.
    pub fn new() -> Registry {
        Registry {
            counters: [0; Metric::ALL.len()],
            gauges: [0.0; Gauge::ALL.len()],
            hists: std::array::from_fn(|i| Hist::ALL[i].new_hist()),
            prof: [ProfSlot::default(); Prof::ALL.len()],
        }
    }

    /// Current value of a counter.
    pub fn count(&self, m: Metric) -> u64 {
        self.counters[m.index()]
    }

    /// Current high-water value of a gauge.
    pub fn gauge(&self, g: Gauge) -> f64 {
        self.gauges[g.index()]
    }

    /// The histogram behind `h`.
    pub fn hist(&self, h: Hist) -> &Histogram {
        &self.hists[h.index()]
    }

    /// The profiler slot for `p`.
    pub fn prof(&self, p: Prof) -> ProfSlot {
        self.prof[p.index()]
    }

    /// Total `(events, cycles)` across every profiler kind.
    pub fn prof_total(&self) -> (u64, u64) {
        self.prof.iter().fold((0u64, 0u64), |(e, c), s| {
            (e.saturating_add(s.events), c.saturating_add(s.cycles))
        })
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0.0)
            && self.hists.iter().all(|h| h.summary().count() == 0)
            && self.prof.iter().all(|s| s.events == 0 && s.cycles == 0)
    }

    #[inline]
    fn record_count(&mut self, m: Metric, n: u64) {
        let c = &mut self.counters[m.index()];
        *c = c.saturating_add(n);
    }

    #[inline]
    fn record_gauge_max(&mut self, g: Gauge, v: f64) {
        let slot = &mut self.gauges[g.index()];
        if v > *slot {
            *slot = v;
        }
    }

    #[inline]
    fn record_observe(&mut self, h: Hist, v: f64) {
        self.hists[h.index()].record(v);
    }

    #[inline]
    fn record_profile(&mut self, p: Prof, cycles: u64) {
        let s = &mut self.prof[p.index()];
        s.events = s.events.saturating_add(1);
        s.cycles = s.cycles.saturating_add(cycles);
    }

    /// Merges `other` into `self`. Counters and profiler slots add
    /// (saturating), gauges take the max, histograms add bucket-wise —
    /// all operations commute, so any merge order yields the same
    /// registry (the sweep engine still merges in submission order for
    /// uniformity with trace/fault absorption).
    pub fn merge(&mut self, other: &Registry) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            if *b > *a {
                *a = *b;
            }
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
        for (a, b) in self.prof.iter_mut().zip(other.prof.iter()) {
            a.events = a.events.saturating_add(b.events);
            a.cycles = a.cycles.saturating_add(b.cycles);
        }
    }

    /// Serializes the registry as a single-line `nsc-metrics-v1` JSON
    /// object. Every known metric appears (zeros included) in sorted
    /// key order, so two equal registries always render byte-identically
    /// and the key set is stable across runs.
    pub fn to_json(&self) -> String {
        let fmt = crate::json::fmt_f64;
        let mut out = String::with_capacity(2048);
        out.push_str("{\"schema\":\"");
        out.push_str(SCHEMA);
        out.push_str("\",\"counters\":{");
        let counters: BTreeMap<&str, u64> =
            Metric::ALL.iter().map(|&m| (m.label(), self.count(m))).collect();
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"gauges\":{");
        let gauges: BTreeMap<&str, f64> =
            Gauge::ALL.iter().map(|&g| (g.label(), self.gauge(g))).collect();
        for (i, (k, v)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{}", fmt(*v)));
        }
        out.push_str("},\"histograms\":{");
        let hists: BTreeMap<&str, &Histogram> =
            Hist::ALL.iter().map(|&h| (h.label(), self.hist(h))).collect();
        for (i, (k, h)) in hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = h.summary();
            let opt = |p: Option<f64>| p.map_or_else(|| "null".to_owned(), fmt);
            out.push_str(&format!(
                "\"{k}\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                s.count(),
                fmt(s.mean()),
                opt(h.percentile_opt(50.0)),
                opt(h.percentile_opt(90.0)),
                opt(h.percentile_opt(99.0)),
            ));
        }
        out.push_str("},\"profile\":{");
        let prof: BTreeMap<&str, (Prof, ProfSlot)> =
            Prof::ALL.iter().map(|&p| (p.label(), (p, self.prof(p)))).collect();
        for (i, (k, (p, s))) in prof.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{k}\":{{\"component\":\"{}\",\"events\":{},\"cycles\":{}}}",
                p.component(),
                s.events,
                s.cycles,
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Count of threads with an installed registry. Zero means the fast
/// paths below return after one relaxed load.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static REGISTRY: RefCell<Option<Registry>> = const { RefCell::new(None) };
}

/// Installs `reg` as this thread's metrics shard, replacing (and
/// discarding) any previous shard without double-counting the
/// activation.
pub fn install(reg: Registry) {
    let prev = REGISTRY.with(|r| r.borrow_mut().replace(reg));
    if prev.is_none() {
        ACTIVE.fetch_add(1, Ordering::SeqCst);
    }
}

/// Removes and returns this thread's shard, if one is installed.
pub fn uninstall() -> Option<Registry> {
    let prev = REGISTRY.with(|r| r.borrow_mut().take());
    if prev.is_some() {
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
    prev
}

/// True when **this thread** has a shard installed (the sweep engine
/// uses this on the submitting thread to decide whether workers should
/// shard).
pub fn installed() -> bool {
    REGISTRY.with(|r| r.borrow().is_some())
}

/// True when any thread in the process has a shard installed. This is a
/// hint: recording calls still no-op on threads without their own shard.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Merges `shard` into this thread's registry; a no-op when none is
/// installed. Sweeps call this on the submitting thread in submission
/// order.
pub fn absorb(shard: &Registry) {
    REGISTRY.with(|r| {
        if let Some(reg) = r.borrow_mut().as_mut() {
            reg.merge(shard);
        }
    });
}

/// A clone of this thread's current shard, if any (reports snapshot
/// without uninstalling so rendering stays side-effect free).
pub fn snapshot() -> Option<Registry> {
    REGISTRY.with(|r| r.borrow().clone())
}

/// Bumps counter `m` by one.
#[inline]
pub fn count(m: Metric) {
    add(m, 1);
}

/// Bumps counter `m` by `n`.
#[inline]
pub fn add(m: Metric, n: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    add_slow(m, n);
}

#[cold]
fn add_slow(m: Metric, n: u64) {
    REGISTRY.with(|r| {
        if let Some(reg) = r.borrow_mut().as_mut() {
            reg.record_count(m, n);
        }
    });
}

/// Raises gauge `g` to `v` if `v` is higher (high-water semantics).
#[inline]
pub fn gauge_max(g: Gauge, v: f64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    gauge_slow(g, v);
}

#[cold]
fn gauge_slow(g: Gauge, v: f64) {
    REGISTRY.with(|r| {
        if let Some(reg) = r.borrow_mut().as_mut() {
            reg.record_gauge_max(g, v);
        }
    });
}

/// Records sample `v` into histogram `h`.
#[inline]
pub fn observe(h: Hist, v: f64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    observe_slow(h, v);
}

#[cold]
fn observe_slow(h: Hist, v: f64) {
    REGISTRY.with(|r| {
        if let Some(reg) = r.borrow_mut().as_mut() {
            reg.record_observe(h, v);
        }
    });
}

/// Attributes one event of kind `p` costing `cycles` simulated cycles
/// to the self-profiler.
#[inline]
pub fn profile(p: Prof, cycles: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    profile_slow(p, cycles);
}

#[cold]
fn profile_slow(p: Prof, cycles: u64) {
    REGISTRY.with(|r| {
        if let Some(reg) = r.borrow_mut().as_mut() {
            reg.record_profile(p, cycles);
        }
    });
}

/// Process-global registry for long-running services (nscd). Separate
/// from the thread-local shards: always on, fed explicitly.
static GLOBAL: OnceLock<Mutex<Registry>> = OnceLock::new();

fn global() -> &'static Mutex<Registry> {
    GLOBAL.get_or_init(|| Mutex::new(Registry::new()))
}

/// Merges a worker shard into the process-global registry. The daemon
/// calls this at response-delivery time, i.e. in submission order per
/// connection.
pub fn absorb_global(shard: &Registry) {
    global().lock().unwrap().merge(shard);
}

/// Bumps a counter directly in the process-global registry (for
/// connection-level events recorded outside any run shard).
pub fn count_global(m: Metric, n: u64) {
    global().lock().unwrap().record_count(m, n);
}

/// High-water update directly on the process-global registry.
pub fn gauge_global_max(g: Gauge, v: f64) {
    global().lock().unwrap().record_gauge_max(g, v);
}

/// Records a sample directly into a process-global histogram.
pub fn observe_global(h: Hist, v: f64) {
    global().lock().unwrap().record_observe(h, v);
}

/// A clone of the process-global registry.
pub fn global_snapshot() -> Registry {
    global().lock().unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_declaration_order() {
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i, "{}", m.label());
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i, "{}", g.label());
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i, "{}", h.label());
        }
        for (i, p) in Prof::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{}", p.label());
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for m in Metric::ALL {
            assert!(seen.insert(m.label()), "duplicate {}", m.label());
        }
        for g in Gauge::ALL {
            assert!(seen.insert(g.label()), "duplicate {}", g.label());
        }
        for h in Hist::ALL {
            assert!(seen.insert(h.label()), "duplicate {}", h.label());
        }
        let mut prof = std::collections::BTreeSet::new();
        for p in Prof::ALL {
            assert!(prof.insert(p.label()), "duplicate {}", p.label());
        }
    }

    #[test]
    fn record_requires_install() {
        assert!(uninstall().is_none());
        count(Metric::MemL1Hits); // no registry: must be a no-op
        install(Registry::new());
        count(Metric::MemL1Hits);
        add(Metric::NocBytes, 10);
        gauge_max(Gauge::PoolQueueDepth, 3.0);
        gauge_max(Gauge::PoolQueueDepth, 2.0); // lower: ignored
        observe(Hist::NocLatencyCycles, 12.0);
        profile(Prof::EngineNearStream, 100);
        profile(Prof::EngineNearStream, 50);
        let snap = uninstall().unwrap();
        assert!(uninstall().is_none());
        assert_eq!(snap.count(Metric::MemL1Hits), 1);
        assert_eq!(snap.count(Metric::NocBytes), 10);
        assert_eq!(snap.gauge(Gauge::PoolQueueDepth), 3.0);
        assert_eq!(snap.hist(Hist::NocLatencyCycles).summary().count(), 1);
        assert_eq!(snap.prof(Prof::EngineNearStream), ProfSlot { events: 2, cycles: 150 });
        assert_eq!(snap.prof_total(), (2, 150));
    }

    #[test]
    fn merge_commutes_and_saturates() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.record_count(Metric::MemL1Hits, u64::MAX - 1);
        b.record_count(Metric::MemL1Hits, 5);
        a.record_gauge_max(Gauge::ServeInFlight, 2.0);
        b.record_gauge_max(Gauge::ServeInFlight, 7.0);
        a.record_observe(Hist::ServeRunMs, 5.0);
        b.record_observe(Hist::ServeRunMs, 25.0);
        a.record_profile(Prof::MemL3, u64::MAX - 10);
        b.record_profile(Prof::MemL3, 100);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(Metric::MemL1Hits), u64::MAX); // saturated
        assert_eq!(ab.gauge(Gauge::ServeInFlight), 7.0);
        assert_eq!(ab.hist(Hist::ServeRunMs).summary().count(), 2);
        assert_eq!(ab.prof(Prof::MemL3).cycles, u64::MAX); // saturated
        assert_eq!(ab.prof(Prof::MemL3).events, 2);
        assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn json_is_stable_and_parses() {
        let mut r = Registry::new();
        r.record_count(Metric::NocByteHops, 4096);
        r.record_observe(Hist::NocLatencyCycles, 17.0);
        r.record_profile(Prof::NocData, 17);
        let json = r.to_json();
        assert_eq!(json, r.clone().to_json());
        let doc = crate::json::parse(&json).expect("snapshot parses");
        let obj = doc.as_obj().unwrap();
        assert_eq!(
            obj.get("schema").and_then(crate::json::Json::as_str),
            Some(SCHEMA)
        );
        let counters = obj.get("counters").and_then(crate::json::Json::as_obj).unwrap();
        assert_eq!(counters.len(), Metric::ALL.len());
        assert_eq!(
            counters.get("noc.byte_hops").and_then(crate::json::Json::as_f64),
            Some(4096.0)
        );
        let prof = obj.get("profile").and_then(crate::json::Json::as_obj).unwrap();
        assert_eq!(prof.len(), Prof::ALL.len());
    }

    #[test]
    fn absorb_into_local_shard() {
        let mut shard = Registry::new();
        shard.record_count(Metric::ResultCacheHits, 3);
        install(Registry::new());
        absorb(&shard);
        absorb(&shard);
        let snap = uninstall().unwrap();
        assert_eq!(snap.count(Metric::ResultCacheHits), 6);
    }

    #[test]
    fn global_registry_accumulates() {
        let before = global_snapshot().count(Metric::ServeRequests);
        count_global(Metric::ServeRequests, 2);
        let mut shard = Registry::new();
        shard.record_count(Metric::ServeRequests, 1);
        absorb_global(&shard);
        let after = global_snapshot().count(Metric::ServeRequests);
        assert_eq!(after - before, 3);
    }
}
