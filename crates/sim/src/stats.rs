//! Statistics primitives used by all timing models.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use nsc_sim::Counter;
/// let mut hits = Counter::new();
/// hits.inc();
/// hits.add(4);
/// assert_eq!(hits.get(), 5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running summary of a scalar sample stream (count/sum/min/max/mean).
///
/// # Examples
///
/// ```
/// use nsc_sim::Summary;
/// let mut lat = Summary::new();
/// lat.record(10.0);
/// lat.record(30.0);
/// assert_eq!(lat.mean(), 20.0);
/// assert_eq!(lat.min(), Some(10.0));
/// assert_eq!(lat.max(), Some(30.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram with fixed-width buckets over `[0, width * buckets)`;
/// out-of-range samples are clamped into the last bucket.
///
/// # Examples
///
/// ```
/// use nsc_sim::Histogram;
/// let mut h = Histogram::new(10.0, 4);
/// h.record(5.0);
/// h.record(35.0);
/// h.record(1000.0); // clamped
/// assert_eq!(h.bucket_counts(), &[1, 0, 0, 2]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    summary: Summary,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of width `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive or `buckets` is zero.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets],
            summary: Summary::new(),
        }
    }

    /// Records a sample.
    pub fn record(&mut self, v: f64) {
        let idx = ((v / self.width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.summary.record(v);
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The scalar summary of all recorded samples.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }
}

/// An ordered name → value table for end-of-run reporting.
///
/// Values are stored as `f64`; integer stats convert losslessly up to 2^53,
/// far beyond any counter in these simulations.
///
/// # Examples
///
/// ```
/// use nsc_sim::StatsTable;
/// let mut t = StatsTable::new();
/// t.set("cycles", 1234.0);
/// t.add("noc.bytes_hops", 100.0);
/// t.add("noc.bytes_hops", 28.0);
/// assert_eq!(t.get("noc.bytes_hops"), Some(128.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsTable {
    values: BTreeMap<String, f64>,
}

impl StatsTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StatsTable::default()
    }

    /// Sets `name` to `value`, replacing any prior value.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Adds `value` to `name` (starting from zero if absent).
    pub fn add(&mut self, name: &str, value: f64) {
        *self.values.entry(name.to_owned()).or_insert(0.0) += value;
    }

    /// Returns the value for `name`, if set.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges `other` into `self` by summing shared names.
    pub fn merge(&mut self, other: &StatsTable) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for StatsTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k:<40} {v:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn summary_empty_and_filled() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        let mut s = Summary::new();
        for v in [2.0, 4.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 15.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        a.record(1.0);
        let mut b = Summary::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(3.0));
    }

    #[test]
    fn histogram_clamps() {
        let mut h = Histogram::new(1.0, 2);
        h.record(0.0);
        h.record(0.5);
        h.record(1.5);
        h.record(99.0);
        assert_eq!(h.bucket_counts(), &[2, 2]);
        assert_eq!(h.summary().count(), 4);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn histogram_rejects_bad_width() {
        let _ = Histogram::new(0.0, 4);
    }

    #[test]
    fn stats_table_roundtrip() {
        let mut t = StatsTable::new();
        assert!(t.is_empty());
        t.set("a", 1.0);
        t.add("a", 2.0);
        t.add("b", 5.0);
        assert_eq!(t.get("a"), Some(3.0));
        assert_eq!(t.len(), 2);
        let mut u = StatsTable::new();
        u.add("b", 1.0);
        t.merge(&u);
        assert_eq!(t.get("b"), Some(6.0));
        let rendered = t.to_string();
        assert!(rendered.contains('a') && rendered.contains('b'));
    }
}
