//! Statistics primitives used by all timing models.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use nsc_sim::Counter;
/// let mut hits = Counter::new();
/// hits.inc();
/// hits.add(4);
/// assert_eq!(hits.get(), 5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one (saturating at `u64::MAX`).
    #[inline]
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increments by `n` (saturating at `u64::MAX`).
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running summary of a scalar sample stream (count/sum/min/max/mean).
///
/// # Examples
///
/// ```
/// use nsc_sim::Summary;
/// let mut lat = Summary::new();
/// lat.record(10.0);
/// lat.record(30.0);
/// assert_eq!(lat.mean(), 20.0);
/// assert_eq!(lat.min(), Some(10.0));
/// assert_eq!(lat.max(), Some(30.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. The sample count saturates at `u64::MAX`
    /// instead of wrapping.
    pub fn record(&mut self, v: f64) {
        self.count = self.count.saturating_add(1);
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Rebuilds a summary from its stored parts (result-cache decode).
    /// An empty summary (`count == 0`) ignores `min`/`max` and restores
    /// the identity sentinels, so a decoded summary merges exactly like
    /// the original.
    pub fn from_parts(count: u64, sum: f64, min: f64, max: f64) -> Summary {
        if count == 0 {
            Summary::new()
        } else {
            Summary { count, sum, min, max }
        }
    }

    /// Merges another summary into this one (count saturates).
    pub fn merge(&mut self, other: &Summary) {
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram with fixed-width buckets over `[0, width * buckets)`;
/// out-of-range samples are clamped into the last bucket.
///
/// # Examples
///
/// ```
/// use nsc_sim::Histogram;
/// let mut h = Histogram::new(10.0, 4);
/// h.record(5.0);
/// h.record(35.0);
/// h.record(1000.0); // clamped
/// assert_eq!(h.bucket_counts(), &[1, 0, 0, 2]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    summary: Summary,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of width `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive or `buckets` is zero.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets],
            summary: Summary::new(),
        }
    }

    /// Records a sample.
    ///
    /// The histogram covers `[0, width * buckets)`: samples below zero
    /// (and NaN) are clamped into bucket 0, samples past the top edge
    /// into the last bucket. The [`Summary`] keeps the exact value either
    /// way, so clamping only affects bucket placement.
    pub fn record(&mut self, v: f64) {
        let idx = if v <= 0.0 || v.is_nan() {
            0
        } else {
            ((v / self.width) as usize).min(self.counts.len() - 1)
        };
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.summary.record(v);
    }

    /// Merges another histogram of the **same geometry** into this one:
    /// bucket counts add (saturating) and the summaries merge.
    ///
    /// # Panics
    ///
    /// Panics when `other` has a different bucket width or count — the
    /// metrics registry only ever merges same-variant histograms, so a
    /// mismatch is a programming error.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.width, other.width, "histogram width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "histogram bucket mismatch");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.summary.merge(&other.summary);
    }

    /// Rebuilds a histogram from its stored parts (result-cache decode).
    /// Percentiles, summaries and JSON renderings of the rebuilt value
    /// are bit-identical to the original's.
    ///
    /// # Panics
    ///
    /// Panics on an invalid shape (non-positive width or no buckets),
    /// same as [`Histogram::new`].
    pub fn from_parts(width: f64, counts: Vec<u64>, summary: Summary) -> Histogram {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(!counts.is_empty(), "need at least one bucket");
        Histogram { width, counts, summary }
    }

    /// The configured bucket width.
    pub fn bucket_width(&self) -> f64 {
        self.width
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The scalar summary of all recorded samples.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Estimates the `p`-th percentile (`p` in `[0, 100]`) by linear
    /// interpolation within the containing bucket, clamped to the exact
    /// observed min/max so tail percentiles never over-shoot the data.
    /// Returns 0.0 when the histogram is empty; reporting code should
    /// prefer [`Histogram::percentile_opt`], which distinguishes "no
    /// samples" from a genuine zero so degraded runs are not mistaken
    /// for perfect ones.
    pub fn percentile(&self, p: f64) -> f64 {
        let total = self.summary.count();
        if total == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the target sample, 1-based, in [1, total].
        let rank = ((p / 100.0) * total as f64).max(1.0);
        // Small-sample tails: when the target rank is the last sample
        // (e.g. p999 of ≤ 1000 samples, where ceil(0.999·n) = n), that
        // order statistic *is* the observed maximum — return it exactly
        // instead of interpolating within the top bucket.
        if rank.ceil() >= total as f64 {
            return self.summary.max().unwrap_or(0.0);
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if (next as f64) >= rank {
                let within = (rank - seen as f64) / c as f64;
                let lo = i as f64 * self.width;
                let est = lo + within * self.width;
                let min = self.summary.min().unwrap_or(est);
                let max = self.summary.max().unwrap_or(est);
                return est.clamp(min.min(max), max);
            }
            seen = next;
        }
        self.summary.max().unwrap_or(0.0)
    }

    /// Like [`Histogram::percentile`], but `None` when the histogram is
    /// empty. JSON reports render `None` as `null` rather than a
    /// misleading 0.
    pub fn percentile_opt(&self, p: f64) -> Option<f64> {
        (self.summary.count() > 0).then(|| self.percentile(p))
    }
}

/// An ordered name → value table for end-of-run reporting.
///
/// Values are stored as `f64`; integer stats convert losslessly up to 2^53,
/// far beyond any counter in these simulations.
///
/// # Examples
///
/// ```
/// use nsc_sim::StatsTable;
/// let mut t = StatsTable::new();
/// t.set("cycles", 1234.0);
/// t.add("noc.bytes_hops", 100.0);
/// t.add("noc.bytes_hops", 28.0);
/// assert_eq!(t.get("noc.bytes_hops"), Some(128.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsTable {
    values: BTreeMap<String, f64>,
}

impl StatsTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StatsTable::default()
    }

    /// Sets `name` to `value`, replacing any prior value.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Adds `value` to `name` (starting from zero if absent).
    pub fn add(&mut self, name: &str, value: f64) {
        *self.values.entry(name.to_owned()).or_insert(0.0) += value;
    }

    /// Returns the value for `name`, if set.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges `other` into `self` by summing shared names.
    pub fn merge(&mut self, other: &StatsTable) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Renders the table as a flat JSON object, keys in name order.
    ///
    /// Non-finite values render as `null` (JSON has no NaN/inf). The
    /// output parses back with [`crate::json::parse`]; see the
    /// observability docs in DESIGN.md for the schema this feeds.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&crate::json::escape(k));
            out.push_str("\":");
            out.push_str(&crate::json::fmt_f64(*v));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for StatsTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k:<40} {v:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn summary_empty_and_filled() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        let mut s = Summary::new();
        for v in [2.0, 4.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 15.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        a.record(1.0);
        let mut b = Summary::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(3.0));
    }

    #[test]
    fn histogram_clamps() {
        let mut h = Histogram::new(1.0, 2);
        h.record(0.0);
        h.record(0.5);
        h.record(1.5);
        h.record(99.0);
        assert_eq!(h.bucket_counts(), &[2, 2]);
        assert_eq!(h.summary().count(), 4);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn histogram_rejects_bad_width() {
        let _ = Histogram::new(0.0, 4);
    }

    #[test]
    fn histogram_clamps_negative_samples_into_bucket_zero() {
        // Regression: negative samples used to rely on `as usize` cast
        // saturation; the clamp is now explicit and documented.
        let mut h = Histogram::new(1.0, 4);
        h.record(-5.0);
        h.record(-0.0);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.bucket_counts(), &[3, 0, 0, 0]);
        assert_eq!(h.summary().count(), 3);
        assert_eq!(h.summary().min(), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn histogram_nan_goes_to_bucket_zero() {
        let mut h = Histogram::new(1.0, 4);
        h.record(f64::NAN);
        assert_eq!(h.bucket_counts(), &[1, 0, 0, 0]);
    }

    #[test]
    fn percentile_empty_and_single() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.percentile_opt(50.0), None);
        let mut h = Histogram::new(1.0, 4);
        h.record(2.5);
        assert_eq!(h.percentile(0.0), 2.5);
        assert_eq!(h.percentile(50.0), 2.5);
        assert_eq!(h.percentile(100.0), 2.5);
        assert_eq!(h.percentile_opt(50.0), Some(2.5));
    }

    #[test]
    fn percentile_orders_and_bounds() {
        let mut h = Histogram::new(10.0, 16);
        for v in [1.0, 2.0, 3.0, 50.0, 51.0, 52.0, 120.0, 121.0, 150.0, 151.0] {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p50 >= 1.0 && p99 <= 151.0);
        // p50 of 10 samples lands in the bucket holding samples 50..53.
        assert!((50.0..60.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn p999_small_samples_return_exact_max() {
        // With n ≤ 1000 samples the p999 order statistic is the last
        // sample: percentile(99.9) must be the observed max, never an
        // interpolated value past (or below) it.
        let mut h = Histogram::new(10.0, 16);
        for v in [1.0, 2.0, 3.0, 50.0, 51.0, 52.0, 120.0, 121.0, 150.0, 151.0] {
            h.record(v);
        }
        assert_eq!(h.percentile(99.9), 151.0);
        assert_eq!(h.percentile_opt(99.9), Some(151.0));
        // Tail ordering still holds.
        assert!(h.percentile(99.0) <= h.percentile(99.9));
        // One sample: every tail percentile is that sample.
        let mut one = Histogram::new(1.0, 4);
        one.record(2.5);
        assert_eq!(one.percentile(99.9), 2.5);
        // Empty stays the documented null behavior.
        assert_eq!(Histogram::new(1.0, 4).percentile_opt(99.9), None);
    }

    #[test]
    fn p999_large_samples_interpolate_below_max() {
        // Past 1000 samples the p999 rank falls short of the max, so
        // interpolation resumes — and must stay bounded by the max.
        let mut h = Histogram::new(10.0, 16);
        for _ in 0..2000 {
            h.record(5.0);
        }
        h.record(155.0); // one outlier at the top
        let p999 = h.percentile(99.9);
        assert!(p999 <= 155.0, "p999 {p999} must not pass the max");
        assert!(p999 < 100.0, "p999 {p999} should sit in the body, not the outlier");
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.inc();
        c.inc(); // would wrap to 0 without saturation
        c.add(100);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_and_summary_counts_saturate() {
        let mut h = Histogram::from_parts(
            1.0,
            vec![u64::MAX - 1, 0],
            Summary::from_parts(u64::MAX - 1, 0.0, 0.0, 0.0),
        );
        h.record(0.5);
        h.record(0.5); // bucket 0 and the summary count both sit at MAX now
        assert_eq!(h.bucket_counts()[0], u64::MAX);
        assert_eq!(h.summary().count(), u64::MAX);
        let mut s = Summary::from_parts(u64::MAX, 1.0, 1.0, 1.0);
        s.merge(&Summary::from_parts(10, 1.0, 1.0, 1.0));
        assert_eq!(s.count(), u64::MAX);
    }

    #[test]
    fn histogram_merge_adds_buckets_and_summaries() {
        let mut a = Histogram::new(1.0, 4);
        a.record(0.5);
        a.record(3.5);
        let mut b = Histogram::new(1.0, 4);
        b.record(0.5);
        b.record(2.5);
        a.merge(&b);
        assert_eq!(a.bucket_counts(), &[2, 0, 1, 1]);
        assert_eq!(a.summary().count(), 4);
        assert_eq!(a.summary().max(), Some(3.5));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn histogram_merge_rejects_different_geometry() {
        let mut a = Histogram::new(1.0, 4);
        a.merge(&Histogram::new(2.0, 4));
    }

    #[test]
    fn stats_table_json() {
        let mut t = StatsTable::new();
        t.set("mem.l1_hits", 12.0);
        t.set("cycles", 3.5);
        t.set("weird\"key", f64::NAN);
        let json = t.to_json();
        assert_eq!(
            json,
            "{\"cycles\":3.5,\"mem.l1_hits\":12.0,\"weird\\\"key\":null}"
        );
        assert_eq!(StatsTable::new().to_json(), "{}");
    }

    #[test]
    fn stats_table_roundtrip() {
        let mut t = StatsTable::new();
        assert!(t.is_empty());
        t.set("a", 1.0);
        t.add("a", 2.0);
        t.add("b", 5.0);
        assert_eq!(t.get("a"), Some(3.0));
        assert_eq!(t.len(), 2);
        let mut u = StatsTable::new();
        u.add("b", 1.0);
        t.merge(&u);
        assert_eq!(t.get("b"), Some(6.0));
        let rendered = t.to_string();
        assert!(rendered.contains('a') && rendered.contains('b'));
    }
}
