//! Deterministic fault injection with zero-cost-when-disabled checks.
//!
//! A [`FaultPlan`] describes which faults to inject and at what rates;
//! [`install`] arms the plan for the current thread, seeding the in-repo
//! xoshiro256** generator so every decision is reproducible from
//! `(seed, rate)` alone. Timing models then consult [`inject`] at their
//! injection sites — NoC message drop/duplication/delay, SE_L3 bank
//! stalls, offload-request NACKs, transient memory read errors, and
//! forced alias-filter mis-speculations.
//!
//! Injected faults perturb only *timing*, *traffic*, and *counters*:
//! architectural results are computed by the functional layer and are
//! bit-identical to the fault-free run by construction. The recovery
//! protocol (retry, backoff, migration, fallback-to-core) lives in the
//! consuming crates; this module only decides *when* something breaks.
//!
//! When no plan is installed the entire cost of an injection site is one
//! relaxed atomic load — the same discipline as [`crate::trace`] — so
//! fault hooks may sit on hot paths without distorting benchmarks.
//!
//! ```
//! use nsc_sim::fault::{self, FaultPlan, FaultSite};
//!
//! fault::install(FaultPlan::uniform(42, 1.0));
//! assert!(fault::inject(FaultSite::NocDrop)); // rate 1.0: always fires
//! let stats = fault::uninstall().unwrap();
//! assert_eq!(stats.count(FaultSite::NocDrop), 1);
//! ```

use crate::rng::Rng;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One kind of injectable fault; each maps to a distinct injection site
/// family in the timing models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// A NoC message is dropped in flight and must be retransmitted.
    NocDrop,
    /// A NoC message is delivered twice (duplicate traffic, same data).
    NocDuplicate,
    /// A NoC message suffers extra in-network delay.
    NocDelay,
    /// An SE_L3 bank is stalled/offline for a window of cycles.
    BankStall,
    /// A bank refuses (NACKs) an offload configuration request.
    OffloadNack,
    /// A DRAM/cache read returns a transient error and is retried.
    MemError,
    /// The alias filter reports a spurious conflict (mis-speculation).
    AliasMisSpec,
}

impl FaultSite {
    /// Every site, in stable order (indexes [`FaultStats`]).
    pub const ALL: [FaultSite; 7] = [
        FaultSite::NocDrop,
        FaultSite::NocDuplicate,
        FaultSite::NocDelay,
        FaultSite::BankStall,
        FaultSite::OffloadNack,
        FaultSite::MemError,
        FaultSite::AliasMisSpec,
    ];

    /// Short stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::NocDrop => "noc-drop",
            FaultSite::NocDuplicate => "noc-duplicate",
            FaultSite::NocDelay => "noc-delay",
            FaultSite::BankStall => "bank-stall",
            FaultSite::OffloadNack => "offload-nack",
            FaultSite::MemError => "mem-error",
            FaultSite::AliasMisSpec => "alias-mis-spec",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::NocDrop => 0,
            FaultSite::NocDuplicate => 1,
            FaultSite::NocDelay => 2,
            FaultSite::BankStall => 3,
            FaultSite::OffloadNack => 4,
            FaultSite::MemError => 5,
            FaultSite::AliasMisSpec => 6,
        }
    }
}

/// A deterministic fault schedule: per-site probabilities plus the
/// penalty magnitudes the recovery paths apply when a fault fires.
///
/// Probabilities are per injection-site visit, in `[0, 1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed; the whole schedule is a pure function of this.
    pub seed: u64,
    /// Probability a NoC message is dropped (then retransmitted).
    pub noc_drop: f64,
    /// Probability a NoC message is duplicated.
    pub noc_duplicate: f64,
    /// Probability a NoC message is delayed by [`noc_delay_cycles`].
    ///
    /// [`noc_delay_cycles`]: FaultPlan::noc_delay_cycles
    pub noc_delay: f64,
    /// Extra cycles added to a delayed message.
    pub noc_delay_cycles: u64,
    /// Probability an SE_L3 bank access hits a stall window.
    pub bank_stall: f64,
    /// Length of a bank stall window in cycles.
    pub bank_stall_cycles: u64,
    /// Probability a bank NACKs an offload configuration request.
    pub offload_nack: f64,
    /// Probability a DRAM/cache read takes a transient error.
    pub mem_error: f64,
    /// Retry latency added on a transient memory error.
    pub mem_retry_cycles: u64,
    /// Probability the alias filter reports a spurious conflict.
    pub alias_false_positive: f64,
}

impl FaultPlan {
    /// The fault-free plan: every probability zero.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            noc_drop: 0.0,
            noc_duplicate: 0.0,
            noc_delay: 0.0,
            noc_delay_cycles: 32,
            bank_stall: 0.0,
            bank_stall_cycles: 200,
            offload_nack: 0.0,
            mem_error: 0.0,
            mem_retry_cycles: 64,
            alias_false_positive: 0.0,
        }
    }

    /// A plan injecting every fault kind at the same `rate`, with the
    /// default penalty magnitudes. The workhorse for sweeps and chaos
    /// tests.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let rate = if rate.is_finite() { rate.clamp(0.0, 1.0) } else { 0.0 };
        FaultPlan {
            seed,
            noc_drop: rate,
            noc_duplicate: rate,
            noc_delay: rate,
            bank_stall: rate,
            offload_nack: rate,
            mem_error: rate,
            alias_false_positive: rate,
            ..FaultPlan::none()
        }
    }

    /// Builds a plan from the `NSC_FAULT_RATE` / `NSC_FAULT_SEED`
    /// environment knobs. Returns `None` when `NSC_FAULT_RATE` is unset,
    /// unparsable, or zero — i.e. when chaos mode is off.
    pub fn from_env() -> Option<Self> {
        let rate: f64 = std::env::var("NSC_FAULT_RATE").ok()?.trim().parse().ok()?;
        if rate.is_nan() || rate <= 0.0 {
            return None;
        }
        let seed = std::env::var("NSC_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0xC0FFEE);
        Some(FaultPlan::uniform(seed, rate))
    }

    /// Derives the plan a parallel sweep arms for run number `run`:
    /// identical rates, with the seed mixed (splitmix64) from the base
    /// seed and the run's submission index. Each run then draws an
    /// independent, reproducible stream that depends only on
    /// `(base seed, run index)` — never on which worker executes it or
    /// in what order runs complete.
    pub fn for_run(&self, run: u64) -> FaultPlan {
        let mut z = self
            .seed
            .wrapping_add(run.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FaultPlan {
            seed: z ^ (z >> 31),
            ..self.clone()
        }
    }

    /// Whether the plan can never fire (all probabilities zero).
    pub fn is_inert(&self) -> bool {
        self.noc_drop <= 0.0
            && self.noc_duplicate <= 0.0
            && self.noc_delay <= 0.0
            && self.bank_stall <= 0.0
            && self.offload_nack <= 0.0
            && self.mem_error <= 0.0
            && self.alias_false_positive <= 0.0
    }

    /// Validates probabilities (finite, in `[0, 1]`).
    pub fn validate(&self) -> Result<(), crate::error::SimError> {
        for (name, p) in [
            ("noc_drop", self.noc_drop),
            ("noc_duplicate", self.noc_duplicate),
            ("noc_delay", self.noc_delay),
            ("bank_stall", self.bank_stall),
            ("offload_nack", self.offload_nack),
            ("mem_error", self.mem_error),
            ("alias_false_positive", self.alias_false_positive),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(crate::error::SimError::config(format!(
                    "fault probability {name} = {p} must be in [0, 1]"
                )));
            }
        }
        Ok(())
    }

    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::NocDrop => self.noc_drop,
            FaultSite::NocDuplicate => self.noc_duplicate,
            FaultSite::NocDelay => self.noc_delay,
            FaultSite::BankStall => self.bank_stall,
            FaultSite::OffloadNack => self.offload_nack,
            FaultSite::MemError => self.mem_error,
            FaultSite::AliasMisSpec => self.alias_false_positive,
        }
    }
}

/// Per-site injection counts, returned by [`uninstall`] / [`snapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    counts: [u64; 7],
}

impl FaultStats {
    /// Rebuilds stats from raw per-site counts, ordered as
    /// [`FaultSite::ALL`]. Used by the result cache to replay a cached
    /// run's injection totals into the live accounting via [`absorb`].
    pub fn from_counts(counts: [u64; 7]) -> FaultStats {
        FaultStats { counts }
    }

    /// Raw per-site counts, ordered as [`FaultSite::ALL`].
    pub fn counts(&self) -> [u64; 7] {
        self.counts
    }

    /// Injections at `site`.
    pub fn count(&self, site: FaultSite) -> u64 {
        self.counts[site.index()]
    }

    /// Total injections across all sites (saturating).
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Per-site difference `self - earlier` (saturating), for windowed
    /// accounting across multiple runs under one installed plan.
    pub fn since(&self, earlier: &FaultStats) -> FaultStats {
        let mut out = FaultStats::default();
        for i in 0..self.counts.len() {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }
}

/// Generation counter: non-zero while an injector is installed somewhere.
/// A single relaxed load of this is the entire disabled-path cost of
/// [`inject`].
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

struct Injector {
    plan: FaultPlan,
    rng: Rng,
    stats: FaultStats,
}

thread_local! {
    static INJECTOR: RefCell<Option<Injector>> = const { RefCell::new(None) };
}

/// Arms `plan` for this thread, replacing any previous plan (and
/// discarding its stats).
///
/// # Panics
///
/// Panics if the plan fails [`FaultPlan::validate`]; harnesses should
/// validate user-supplied rates before installing.
pub fn install(plan: FaultPlan) {
    if let Err(e) = plan.validate() {
        panic!("refusing to install fault plan: {e}");
    }
    let rng = Rng::seed_from_u64(plan.seed);
    let replaced = INJECTOR.with(|t| {
        t.borrow_mut()
            .replace(Injector {
                plan,
                rng,
                stats: FaultStats::default(),
            })
            .is_some()
    });
    if !replaced {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarms the injector and returns its stats, or `None` if fault
/// injection was not enabled on this thread.
pub fn uninstall() -> Option<FaultStats> {
    let prev = INJECTOR.with(|t| t.borrow_mut().take());
    if prev.is_some() {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
    prev.map(|inj| inj.stats)
}

/// Adds `stats` into the injector installed on *this* thread.
///
/// Parallel sweeps arm a per-run injector on whatever worker executes a
/// run (see [`FaultPlan::for_run`]) and absorb each run's stats back
/// into the main-thread injector in submission order, so the totals the
/// harness reports are independent of worker count and completion
/// timing. A no-op when no injector is installed here.
pub fn absorb(stats: FaultStats) {
    INJECTOR.with(|t| {
        if let Some(inj) = t.borrow_mut().as_mut() {
            for i in 0..inj.stats.counts.len() {
                inj.stats.counts[i] = inj.stats.counts[i].saturating_add(stats.counts[i]);
            }
        }
    });
}

/// The plan armed on *this* thread, if any. The result cache folds it
/// into the run digest: the same simulation point under different fault
/// schedules is a different artifact.
pub fn current_plan() -> Option<FaultPlan> {
    INJECTOR.with(|t| t.borrow().as_ref().map(|inj| inj.plan.clone()))
}

/// Whether any injector is installed (fast, approximate across threads).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Draws the injection decision for `site`. Returns `false` — without
/// running the PRNG — when no plan is installed; otherwise consumes one
/// random draw and counts a hit.
#[inline]
pub fn inject(site: FaultSite) -> bool {
    if !active() {
        return false;
    }
    inject_slow(site)
}

#[cold]
fn inject_slow(site: FaultSite) -> bool {
    INJECTOR.with(|t| {
        let mut b = t.borrow_mut();
        let Some(inj) = b.as_mut() else { return false };
        let rate = inj.plan.rate(site);
        if rate <= 0.0 {
            return false;
        }
        let hit = rate >= 1.0 || inj.rng.gen_f64() < rate;
        if hit {
            let c = &mut inj.stats.counts[site.index()];
            *c = c.saturating_add(1);
            crate::metrics::count(crate::metrics::Metric::FaultsInjected);
        }
        hit
    })
}

/// The penalty magnitude (in cycles) the installed plan assigns to
/// `site`; 0 for sites without a magnitude or when disarmed. Only
/// meaningful right after [`inject`] returned `true`, so this is never
/// on a hot path.
pub fn penalty(site: FaultSite) -> u64 {
    INJECTOR.with(|t| {
        let b = t.borrow();
        let Some(inj) = b.as_ref() else { return 0 };
        match site {
            FaultSite::NocDelay => inj.plan.noc_delay_cycles,
            FaultSite::BankStall => inj.plan.bank_stall_cycles,
            FaultSite::MemError => inj.plan.mem_retry_cycles,
            _ => 0,
        }
    })
}

/// A copy of the current per-site stats (all zero when disarmed).
/// Harnesses snapshot before and after a run and diff with
/// [`FaultStats::since`] to attribute injections to that run.
pub fn snapshot() -> FaultStats {
    INJECTOR.with(|t| t.borrow().as_ref().map(|inj| inj.stats).unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_into_installed_injector() {
        install(FaultPlan::uniform(11, 1.0));
        assert!(inject(FaultSite::NocDrop));
        let mut other = FaultStats::default();
        other.counts[FaultSite::MemError.index()] = 4;
        other.counts[FaultSite::NocDrop.index()] = 2;
        absorb(other);
        let s = uninstall().unwrap();
        assert_eq!(s.count(FaultSite::NocDrop), 3);
        assert_eq!(s.count(FaultSite::MemError), 4);
        // Absorb with nothing installed is a silent no-op.
        absorb(other);
        assert!(uninstall().is_none());
    }

    #[test]
    fn for_run_is_deterministic_and_decorrelated() {
        let base = FaultPlan::uniform(0xC0FFEE, 1e-3);
        assert_eq!(base.for_run(5), base.for_run(5));
        assert_ne!(base.for_run(0).seed, base.for_run(1).seed);
        assert_ne!(base.for_run(0).seed, base.seed);
        let derived = base.for_run(3);
        assert_eq!(derived.mem_error, base.mem_error);
        assert_eq!(derived.noc_delay_cycles, base.noc_delay_cycles);
    }

    #[test]
    fn install_replacing_does_not_leak_active_count() {
        let before = ACTIVE.load(Ordering::Relaxed);
        install(FaultPlan::uniform(1, 0.5));
        install(FaultPlan::uniform(2, 0.5)); // replace, not stack
        assert_eq!(ACTIVE.load(Ordering::Relaxed), before + 1);
        assert!(uninstall().is_some());
        assert_eq!(ACTIVE.load(Ordering::Relaxed), before);
    }

    #[test]
    fn disarmed_never_injects() {
        // Note: `active()` is process-global, so a parallel test thread
        // may have an injector armed; the thread-local lookup is what
        // guarantees this thread stays fault-free.
        assert!(uninstall().is_none());
        assert!(!inject(FaultSite::NocDrop));
        assert_eq!(penalty(FaultSite::BankStall), 0);
        assert_eq!(snapshot(), FaultStats::default());
    }

    #[test]
    fn rate_one_always_fires_and_counts() {
        install(FaultPlan::uniform(7, 1.0));
        for _ in 0..5 {
            assert!(inject(FaultSite::MemError));
        }
        assert!(inject(FaultSite::AliasMisSpec));
        let s = uninstall().unwrap();
        assert_eq!(s.count(FaultSite::MemError), 5);
        assert_eq!(s.count(FaultSite::AliasMisSpec), 1);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn rate_zero_never_fires_even_when_armed() {
        install(FaultPlan::none());
        for site in FaultSite::ALL {
            assert!(!inject(site));
        }
        assert_eq!(uninstall().unwrap().total(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            install(FaultPlan::uniform(seed, 0.3));
            let hits: Vec<bool> = (0..200).map(|_| inject(FaultSite::NocDrop)).collect();
            uninstall().unwrap();
            hits
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds should diverge");
    }

    #[test]
    fn penalties_come_from_the_plan() {
        let mut plan = FaultPlan::uniform(1, 0.5);
        plan.noc_delay_cycles = 17;
        plan.bank_stall_cycles = 33;
        plan.mem_retry_cycles = 51;
        install(plan);
        assert_eq!(penalty(FaultSite::NocDelay), 17);
        assert_eq!(penalty(FaultSite::BankStall), 33);
        assert_eq!(penalty(FaultSite::MemError), 51);
        assert_eq!(penalty(FaultSite::NocDrop), 0);
        uninstall();
    }

    #[test]
    fn snapshot_diffs_attribute_windows() {
        install(FaultPlan::uniform(3, 1.0));
        inject(FaultSite::OffloadNack);
        let mid = snapshot();
        inject(FaultSite::OffloadNack);
        inject(FaultSite::NocDrop);
        let end = snapshot();
        let delta = end.since(&mid);
        assert_eq!(delta.count(FaultSite::OffloadNack), 1);
        assert_eq!(delta.count(FaultSite::NocDrop), 1);
        assert_eq!(delta.total(), 2);
        uninstall();
    }

    #[test]
    fn plan_validation_rejects_bad_rates() {
        let mut p = FaultPlan::none();
        p.mem_error = 1.5;
        assert!(p.validate().is_err());
        p.mem_error = f64::NAN;
        assert!(p.validate().is_err());
        assert!(FaultPlan::uniform(0, 0.5).validate().is_ok());
        // `uniform` clamps out-of-range input.
        assert!(FaultPlan::uniform(0, 7.0).validate().is_ok());
    }

    #[test]
    fn inert_detection() {
        assert!(FaultPlan::none().is_inert());
        assert!(FaultPlan::uniform(0, 0.0).is_inert());
        assert!(!FaultPlan::uniform(0, 0.01).is_inert());
    }
}
