//! Request-scoped spans: a tiny tracing layer for the serving path.
//!
//! Where [`crate::trace`] records *simulated* time (cycles), this module
//! records *host* time (microseconds since a process-wide epoch) for the
//! phases of one service request: accept, parse, queue wait, dispatch,
//! cache probe, simulate, encode, reorder hold, deliver. A request's
//! spans accumulate into a [`SpanTrace`] that travels with the request
//! across threads (connection reader → pool worker → ordered writer) and
//! is sealed into an immutable [`SpanTree`] at delivery time.
//!
//! The tree serializes under schema [`SCHEMA`] (`nsc-span-v1`) as a
//! single-line JSON document: the `nscd` daemon embeds it as the
//! `latency` field of every `submit` response and serves it again
//! through the `trace` op. [`crate::trace::chrome::render_with_spans`]
//! merges a span tree with the simulator's cycle-level trace events into
//! one Perfetto document, anchoring the sim tracks at the `simulate`
//! span's start.
//!
//! Cost model: spans exist only on the serving path — one small `Vec`
//! per request, nothing per element — and the simulation itself is never
//! touched, so sim results are byte-identical whether or not a request
//! is being traced.
//!
//! # Examples
//!
//! ```
//! use nsc_sim::span::{self, SpanTrace};
//!
//! let mut t = SpanTrace::begin(0xABCD);
//! let v = t.time("parse", || 21 * 2);
//! assert_eq!(v, 42);
//! let tree = t.finish();
//! assert_eq!(tree.request_id, 0xABCD);
//! assert_eq!(tree.spans.len(), 1);
//! assert!(tree.to_json().contains("\"name\":\"parse\""));
//! ```

use std::sync::OnceLock;
use std::time::Instant;

/// Schema identifier embedded in every serialized span tree.
pub const SCHEMA: &str = "nsc-span-v1";

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process-wide span epoch (latched on first
/// use). Monotonic and shared across threads, so timestamps taken on
/// the connection reader, a pool worker and the ordered writer are
/// directly comparable.
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// One named, closed phase of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Phase name (`accept`, `parse`, `simulate`, ...).
    pub name: &'static str,
    /// Start, µs. Absolute (epoch-relative) inside a [`SpanTrace`];
    /// request-relative inside a sealed [`SpanTree`].
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
}

/// A request's spans while the request is still in flight. Created when
/// the request line starts arriving, moved through the worker closures,
/// sealed with [`finish`](SpanTrace::finish) at delivery time.
#[derive(Clone, Debug)]
pub struct SpanTrace {
    request_id: u64,
    t0_us: u64,
    spans: Vec<Span>,
}

impl SpanTrace {
    /// Starts a trace for `request_id` now.
    pub fn begin(request_id: u64) -> SpanTrace {
        Self::begin_at(request_id, now_us())
    }

    /// Starts a trace whose root opened at `t0_us` (a timestamp taken
    /// before the request id was known, e.g. when the socket read began).
    pub fn begin_at(request_id: u64, t0_us: u64) -> SpanTrace {
        SpanTrace { request_id, t0_us, spans: Vec::with_capacity(10) }
    }

    /// The id this trace belongs to.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Records a closed span from absolute timestamps (clamped so a
    /// non-monotonic pair cannot underflow).
    pub fn push(&mut self, name: &'static str, from_us: u64, to_us: u64) {
        self.spans.push(Span {
            name,
            start_us: from_us,
            dur_us: to_us.saturating_sub(from_us),
        });
    }

    /// Times `f` as a span named `name`.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let t0 = now_us();
        let v = f();
        self.push(name, t0, now_us());
        v
    }

    /// Seals the trace: the root span closes now, and every recorded
    /// span is rebased to be relative to the root's start.
    pub fn finish(self) -> SpanTree {
        let end = now_us().max(self.t0_us);
        let t0 = self.t0_us;
        SpanTree {
            request_id: self.request_id,
            start_us: t0,
            wall_us: end - t0,
            spans: self
                .spans
                .into_iter()
                .map(|s| Span {
                    name: s.name,
                    start_us: s.start_us.saturating_sub(t0),
                    dur_us: s.dur_us,
                })
                .collect(),
        }
    }
}

/// A sealed span tree: the root (`wall_us`, opened at `start_us`) plus
/// its child phases, each relative to the root's start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanTree {
    /// The request this tree describes.
    pub request_id: u64,
    /// Root start, µs since the process span epoch (absolute — this is
    /// what places the tree on a shared Perfetto timeline).
    pub start_us: u64,
    /// Root duration: total request wall time, µs.
    pub wall_us: u64,
    /// Child phases, `start_us` relative to the root.
    pub spans: Vec<Span>,
}

impl SpanTree {
    /// The first span named `name`, if recorded.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Sum of all child durations (≤ `wall_us` up to rounding, since
    /// the serving phases are sequential).
    pub fn spans_total_us(&self) -> u64 {
        self.spans.iter().map(|s| s.dur_us).sum()
    }

    /// Serializes the tree as one line of `nsc-span-v1` JSON. The
    /// request id is rendered as a hex *string*: nested documents are
    /// re-parsed with [`crate::json::parse`], whose numbers are `f64`
    /// and would round ids above 2^53.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 48);
        out.push_str("{\"schema\":\"");
        out.push_str(SCHEMA);
        out.push_str("\",\"request_id\":\"");
        out.push_str(&format!("{:016x}", self.request_id));
        out.push_str(&format!(
            "\",\"start_us\":{},\"wall_us\":{},\"spans\":[",
            self.start_us, self.wall_us
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
                s.name, s.start_us, s.dur_us
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_us_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn trace_records_and_rebases() {
        let mut t = SpanTrace::begin_at(7, 100);
        t.push("accept", 100, 112);
        t.push("parse", 112, 113);
        let tree = t.finish();
        assert_eq!(tree.request_id, 7);
        assert_eq!(tree.span("accept"), Some(&Span { name: "accept", start_us: 0, dur_us: 12 }));
        assert_eq!(tree.span("parse"), Some(&Span { name: "parse", start_us: 12, dur_us: 1 }));
        assert!(tree.span("simulate").is_none());
        assert_eq!(tree.spans_total_us(), 13);
    }

    #[test]
    fn non_monotonic_pairs_clamp_to_zero() {
        let mut t = SpanTrace::begin_at(1, 50);
        t.push("weird", 60, 40);
        let tree = t.finish();
        assert_eq!(tree.span("weird").unwrap().dur_us, 0);
    }

    #[test]
    fn json_parses_and_carries_every_span() {
        let mut t = SpanTrace::begin_at(0xFFFF_FFFF_FFFF_FFFF, 0);
        t.push("accept", 0, 5);
        t.push("simulate", 5, 905);
        let tree = t.finish();
        let doc = crate::json::parse(&tree.to_json()).expect("tree JSON parses");
        assert_eq!(
            doc.get("schema").and_then(crate::json::Json::as_str),
            Some(SCHEMA)
        );
        // The id survives as a lossless hex string.
        assert_eq!(
            doc.get("request_id").and_then(crate::json::Json::as_str),
            Some("ffffffffffffffff")
        );
        let spans = doc.get("spans").and_then(crate::json::Json::as_arr).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans[1].get("dur_us").and_then(crate::json::Json::as_f64),
            Some(900.0)
        );
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = SpanTrace::begin(3);
        assert_eq!(t.time("work", || "done"), "done");
        let tree = t.finish();
        assert_eq!(tree.spans.len(), 1);
        assert!(tree.wall_us >= tree.spans_total_us());
    }
}
