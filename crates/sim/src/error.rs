//! Typed errors for fallible simulator paths.
//!
//! The timing models distinguish two failure classes. *True internal
//! invariants* — states the code itself guarantees can never arise —
//! remain `panic!`s with messages naming the violated invariant.
//! Everything a caller could plausibly get wrong (bad configuration,
//! exhausted resources, a run that wedges under fault injection) is
//! reported as a [`SimError`] so harnesses can surface it gracefully.
//!
//! # Examples
//!
//! ```
//! use nsc_sim::error::SimError;
//! let e = SimError::config("mesh width must be non-zero");
//! assert!(e.to_string().contains("mesh width"));
//! ```

use std::fmt;

/// An error from a fallible simulator path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A configuration failed validation before the run started.
    Config {
        /// What was wrong, phrased for the person who wrote the config.
        what: String,
    },
    /// A bounded queue or bandwidth resource was exhausted.
    ResourceExhausted {
        /// Which resource ran out.
        what: String,
    },
    /// An address mapped to a bank that does not exist in the topology.
    BankLookup {
        /// The requested bank index.
        bank: usize,
        /// The number of banks in the system.
        n_banks: usize,
    },
    /// The event queue drained while work was still pending: the run
    /// wedged instead of terminating. Carries the pending set so tests
    /// and harnesses can report exactly what was stuck.
    Wedged {
        /// Human-readable descriptions of the incomplete work items
        /// (e.g. `core 3: iteration 17/64`).
        pending: Vec<String>,
    },
    /// A kernel's data-dependent (`while`) loop exceeded its iteration cap:
    /// the run is assumed non-terminating and is shed instead of spinning a
    /// worker forever.
    LoopCap {
        /// The kernel whose loop ran away.
        kernel: String,
        /// The iteration cap that was exceeded.
        cap: u64,
    },
    /// An artifact (results JSON, trace file) could not be written.
    Io {
        /// What was being written (usually a path).
        what: String,
        /// The underlying OS error, stringified.
        cause: String,
    },
}

impl SimError {
    /// Shorthand for a [`SimError::Config`].
    pub fn config(what: impl Into<String>) -> Self {
        SimError::Config { what: what.into() }
    }

    /// Shorthand for a [`SimError::ResourceExhausted`].
    pub fn exhausted(what: impl Into<String>) -> Self {
        SimError::ResourceExhausted { what: what.into() }
    }

    /// Wraps an io error with the artifact it concerned.
    pub fn io(what: impl Into<String>, cause: &std::io::Error) -> Self {
        SimError::Io {
            what: what.into(),
            cause: cause.to_string(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config { what } => write!(f, "invalid configuration: {what}"),
            SimError::ResourceExhausted { what } => write!(f, "resource exhausted: {what}"),
            SimError::BankLookup { bank, n_banks } => {
                write!(f, "bank lookup failed: bank {bank} of {n_banks}")
            }
            SimError::Wedged { pending } => {
                write!(
                    f,
                    "simulation wedged with {} incomplete work item(s): {}",
                    pending.len(),
                    pending.join("; ")
                )
            }
            SimError::LoopCap { kernel, cap } => {
                write!(f, "kernel {kernel}: while loop exceeded {cap} iterations (assumed non-terminating)")
            }
            SimError::Io { what, cause } => write!(f, "cannot write {what}: {cause}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = SimError::config("n_cores must be non-zero");
        assert_eq!(e.to_string(), "invalid configuration: n_cores must be non-zero");
        let e = SimError::BankLookup { bank: 99, n_banks: 64 };
        assert!(e.to_string().contains("bank 99 of 64"));
        let e = SimError::Wedged {
            pending: vec!["core 0: iteration 3/8".into()],
        };
        assert!(e.to_string().contains("core 0: iteration 3/8"));
        let e = SimError::exhausted("SE stream slots");
        assert!(e.to_string().contains("SE stream slots"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::config("x"));
    }
}
