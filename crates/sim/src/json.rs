//! Minimal JSON support: string escaping, number formatting, and a small
//! recursive-descent parser.
//!
//! The suite builds offline with no external crates, so the observability
//! layer hand-rolls its JSON. Emitters in this workspace write JSON by
//! formatting strings directly (see [`escape`] and [`fmt_f64`]); the
//! [`Json`] value type and [`parse`] exist so tests can validate emitted
//! documents structurally rather than by string comparison.
//!
//! # Examples
//!
//! ```
//! use nsc_sim::json::{parse, Json};
//! let doc = parse("{\"a\": [1, 2.5], \"b\": null}").unwrap();
//! assert_eq!(doc.get("a").and_then(|a| a.index(1)).and_then(Json::as_f64), Some(2.5));
//! assert!(doc.get("b").is_some());
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number.
///
/// JSON has no representation for NaN or infinities, so non-finite values
/// render as `null`. Finite values use Rust's shortest round-trip `{}`
/// formatting, with a trailing `.0` added to integral values so consumers
/// that distinguish ints from floats see a consistent type.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also produced by non-finite float emission).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is not preserved.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element lookup; `None` for non-arrays or out of range.
    pub fn index(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(v) => v.get(i),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed by our emitters;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b != b'"' && b != b'\\' && (0x20..0x80).contains(&b) => {
                    // Plain ASCII: consume the whole run in one step. (A
                    // per-character `from_utf8` of the full remaining input
                    // here made parsing quadratic on megabyte documents.)
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || !(0x20..0x80).contains(&b) {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
                Some(_) => {
                    // Multi-byte UTF-8 (or a raw control byte): validate at
                    // most one character's worth of bytes.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(rest) {
                        Ok(s) => s.chars().next().unwrap(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(e) => return Err(e.to_string()),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn fmt_f64_cases() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(-0.25), "-0.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".to_owned()));
    }

    #[test]
    fn parse_nested() {
        let doc = parse("{\"a\": [1, {\"b\": \"x\"}], \"c\": 2}").unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_f64), Some(2.0));
        let b = doc.get("a").and_then(|a| a.index(1)).and_then(|o| o.get("b"));
        assert_eq!(b.and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn roundtrip_escaped_string() {
        let original = "quote \" slash \\ tab \t";
        let doc = parse(&format!("\"{}\"", escape(original))).unwrap();
        assert_eq!(doc.as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), Json::Arr(Vec::new()));
    }

    #[test]
    fn parse_multibyte_and_long_strings() {
        // Multi-byte characters survive, including at end-of-input.
        let doc = parse("\"héllo → 🌍\"").unwrap();
        assert_eq!(doc.as_str(), Some("héllo → 🌍"));
        // Long plain strings parse in linear time (the per-character
        // whole-tail UTF-8 validation made this quadratic; megabyte traces
        // took minutes to parse).
        let big = "x".repeat(4 << 20);
        let doc = parse(&format!("[\"{big}\", \"{big}\"]")).unwrap();
        assert_eq!(doc.index(1).and_then(Json::as_str).map(str::len), Some(big.len()));
    }
}
