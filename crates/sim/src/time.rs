//! Virtual time base.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) virtual time, measured in clock cycles.
///
/// The simulated system runs at a single 2 GHz clock (paper Table V), so one
/// `Cycle` is 0.5 ns of simulated time. `Cycle` is used both as an absolute
/// timestamp and as a duration; arithmetic saturates on subtraction so that
/// latency computations never wrap.
///
/// # Examples
///
/// ```
/// use nsc_sim::Cycle;
///
/// let start = Cycle(100);
/// let end = start + Cycle(20);
/// assert_eq!(end - start, Cycle(20));
/// assert_eq!(Cycle(5) - Cycle(9), Cycle(0)); // saturating
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero timestamp.
    pub const ZERO: Cycle = Cycle(0);
    /// The largest representable timestamp, used as an "infinite" horizon.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Converts a cycle count at 2 GHz into seconds of simulated time.
    ///
    /// ```
    /// use nsc_sim::Cycle;
    /// assert!((Cycle(2_000_000_000).as_seconds_at_2ghz() - 1.0).abs() < 1e-12);
    /// ```
    pub fn as_seconds_at_2ghz(self) -> f64 {
        self.0 as f64 / 2.0e9
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Saturating subtraction, returning a duration.
    #[inline]
    pub fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// Saturating: `a - b` is zero when `b > a`.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, Add::add)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cycle(3) + Cycle(4), Cycle(7));
        assert_eq!(Cycle(3) + 4, Cycle(7));
        assert_eq!(Cycle(10) - Cycle(4), Cycle(6));
        assert_eq!(Cycle(4) - Cycle(10), Cycle(0));
        let mut c = Cycle(1);
        c += Cycle(2);
        c += 3;
        assert_eq!(c, Cycle(6));
        c -= Cycle(10);
        assert_eq!(c, Cycle(0));
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(1).max(Cycle(2)), Cycle(2));
        assert_eq!(Cycle(1).min(Cycle(2)), Cycle(1));
        assert_eq!(Cycle::ZERO, Cycle(0));
    }

    #[test]
    fn sum_and_display() {
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
        assert_eq!(format!("{total}"), "6cy");
    }

    #[test]
    fn seconds_conversion() {
        assert_eq!(Cycle(0).as_seconds_at_2ghz(), 0.0);
        assert!((Cycle(1).as_seconds_at_2ghz() - 0.5e-9).abs() < 1e-21);
    }
}
