//! Telemetry timeline: a fixed-capacity ring of periodic registry
//! samples, the time dimension the point-in-time `metrics` snapshot
//! lacks.
//!
//! A sampler (the `nscd` daemon runs one thread; tests drive the ring
//! directly) periodically feeds the process-global [`crate::metrics`]
//! registry into [`Timeline::sample`]. Each call diffs the new snapshot
//! against the previous one and appends a compact [`Frame`]: per-window
//! counter deltas, derived rates (req/s, shed/s, cache hit-rate) and
//! windowed latency quantiles (p50/p99/p999 of `serve.total_us`,
//! computed from the bucket-count difference between consecutive
//! cumulative histograms — the registry itself is never reset).
//!
//! The ring holds at most `cap` frames; older frames fall off the
//! front. Every frame carries a monotone `seq`, so the `timeline` op's
//! `since` cursor paginates exactly the unseen frames even across
//! wraparound. Frames serialize one-per-line under schema [`SCHEMA`]
//! (`nsc-timeline-v1`, DESIGN.md §6.15).
//!
//! Determinism: [`Timeline::sample`] takes the timestamp as a
//! parameter (an injectable clock), performs no I/O and reads no host
//! time, so identical snapshot/tick sequences render byte-identical
//! frames — the basis of the `NSC_JOBS=1` vs `8` identity tests.
//!
//! Health: [`SloConfig`] (from `NSC_SLO_P99_US` / `NSC_SLO_SHED_RATE`
//! / `NSC_SLO_HIT_RATE`) evaluates the most recent frames into a typed
//! [`Verdict`] with per-rule evidence — `ok` when no rule is breached
//! in the latest frame, `degraded` on a fresh breach, `failing` once a
//! rule has been breached for [`FAILING_STREAK`] consecutive frames.
//!
//! # Examples
//!
//! ```
//! use nsc_sim::metrics::Registry;
//! use nsc_sim::timeline::Timeline;
//!
//! let mut tl = Timeline::new(4);
//! tl.sample(1000, &Registry::new());
//! tl.sample(2000, &Registry::new());
//! assert_eq!(tl.latest().unwrap().seq, 2);
//! assert_eq!(tl.since(1).count(), 1); // cursor: only the unseen frame
//! assert!(tl.render_since(0).contains("\"schema\":\"nsc-timeline-v1\""));
//! ```

use crate::json::fmt_f64;
use crate::metrics::{Gauge, Hist, Metric, Registry};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Schema identifier embedded in every serialized frame.
pub const SCHEMA: &str = "nsc-timeline-v1";

/// Default sampler interval (`NSC_SAMPLE_MS`), milliseconds.
pub const DEFAULT_SAMPLE_MS: u64 = 1000;

/// Default ring capacity (`NSC_TIMELINE_CAP`): 900 frames = 15 minutes
/// at the default 1 s interval.
pub const DEFAULT_CAP: usize = 900;

/// Consecutive breached frames after which a rule escalates the
/// verdict from `degraded` to `failing`.
pub const FAILING_STREAK: u64 = 3;

/// One sampled window: counter deltas, derived rates, gauge high-water
/// marks and windowed latency quantiles.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Monotone frame number, 1-based. The `timeline` op's `since`
    /// cursor is "last seq I saw"; frames with `seq > since` are the
    /// unseen ones.
    pub seq: u64,
    /// Sample timestamp, milliseconds on the sampler's clock (daemon:
    /// ms since the sampler started; tests: injected ticks).
    pub t_ms: u64,
    /// Window covered by this frame's deltas, milliseconds.
    pub window_ms: u64,
    /// `serve.requests` delta over the window.
    pub requests: u64,
    /// `serve.runs` delta over the window.
    pub runs: u64,
    /// `serve.runs_cached` delta over the window.
    pub cached: u64,
    /// `serve.shed` + `serve.deadline_exceeded` delta over the window.
    pub shed: u64,
    /// `serve.errors` delta over the window.
    pub errors: u64,
    /// `result_cache.hits` delta over the window.
    pub cache_hits: u64,
    /// `result_cache.misses` delta over the window.
    pub cache_misses: u64,
    /// Requests per second over the window.
    pub req_s: f64,
    /// Sheds per second over the window.
    pub shed_s: f64,
    /// Sheds as a fraction of requests in the window (0 when idle).
    pub shed_ratio: f64,
    /// Result-cache hit fraction over the window, `None` when the
    /// window saw no lookups (renders as `null`).
    pub hit_rate: Option<f64>,
    /// `serve.queue_depth_hwm` gauge at sample time (cumulative
    /// high-water mark, not a per-window value).
    pub queue_hwm: f64,
    /// `serve.in_flight_hwm` gauge at sample time.
    pub in_flight_hwm: f64,
    /// Windowed p50 of `serve.total_us`, `None` when the window saw no
    /// completed requests.
    pub p50_us: Option<f64>,
    /// Windowed p99 of `serve.total_us`.
    pub p99_us: Option<f64>,
    /// Windowed p999 of `serve.total_us`.
    pub p999_us: Option<f64>,
}

impl Frame {
    /// Renders the frame as one `nsc-timeline-v1` ndjson line (no
    /// trailing newline). Key order is fixed, so equal frames render
    /// byte-identically.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| v.map_or_else(|| "null".to_owned(), fmt_f64);
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"schema\":\"{SCHEMA}\",\"seq\":{},\"t_ms\":{},\"window_ms\":{},\
             \"requests\":{},\"runs\":{},\"cached\":{},\"shed\":{},\"errors\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\
             \"req_s\":{},\"shed_s\":{},\"shed_ratio\":{},\"hit_rate\":{},\
             \"queue_hwm\":{},\"in_flight_hwm\":{},\
             \"p50_us\":{},\"p99_us\":{},\"p999_us\":{}}}",
            self.seq,
            self.t_ms,
            self.window_ms,
            self.requests,
            self.runs,
            self.cached,
            self.shed,
            self.errors,
            self.cache_hits,
            self.cache_misses,
            fmt_f64(self.req_s),
            fmt_f64(self.shed_s),
            fmt_f64(self.shed_ratio),
            opt(self.hit_rate),
            fmt_f64(self.queue_hwm),
            fmt_f64(self.in_flight_hwm),
            opt(self.p50_us),
            opt(self.p99_us),
            opt(self.p999_us),
        );
        s
    }
}

/// The p-th percentile (p in `[0,100]`) of a **windowed** bucket-count
/// difference, by linear interpolation within the containing bucket.
///
/// The window has no exact min/max (those are not diffable between
/// cumulative summaries), so estimates clamp to bucket edges instead.
/// `None` when the window recorded no samples.
pub fn delta_percentile(counts: &[u64], width: f64, p: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * total as f64).max(1.0);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let next = seen + c;
        if (next as f64) >= rank {
            let within = (rank - seen as f64) / c as f64;
            return Some((i as f64 + within) * width);
        }
        seen = next;
    }
    Some(counts.len() as f64 * width)
}

/// A fixed-capacity ring of [`Frame`]s plus the previous registry
/// snapshot the next delta will diff against.
///
/// Allocation-bounded: one retained [`Registry`] clone and at most
/// `cap` frames, regardless of uptime.
#[derive(Clone, Debug)]
pub struct Timeline {
    cap: usize,
    frames: VecDeque<Frame>,
    next_seq: u64,
    prev: Option<(u64, Registry)>,
}

impl Timeline {
    /// Creates an empty timeline retaining at most `cap` frames
    /// (`cap` is clamped to at least 1).
    pub fn new(cap: usize) -> Timeline {
        Timeline {
            cap: cap.max(1),
            frames: VecDeque::new(),
            next_seq: 1,
            prev: None,
        }
    }

    /// The configured ring capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of frames currently retained.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frame has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The most recent frame, if any.
    pub fn latest(&self) -> Option<&Frame> {
        self.frames.back()
    }

    /// Diffs `reg` against the previous sample and appends one frame
    /// stamped `now_ms` (the caller's clock — the daemon passes
    /// milliseconds since the sampler started, tests pass synthetic
    /// ticks). The first sample diffs against an all-zero registry over
    /// the window `[0, now_ms]`.
    pub fn sample(&mut self, now_ms: u64, reg: &Registry) -> &Frame {
        let zero = Registry::new();
        let (prev_ms, prev_reg) = match &self.prev {
            Some((t, r)) => (*t, r),
            None => (0, &zero),
        };
        let window_ms = now_ms.saturating_sub(prev_ms);
        let d = |m: Metric| reg.count(m).saturating_sub(prev_reg.count(m));
        let requests = d(Metric::ServeRequests);
        let shed = d(Metric::ServeShed) + d(Metric::ServeDeadlineExceeded);
        let cache_hits = d(Metric::ResultCacheHits);
        let cache_misses = d(Metric::ResultCacheMisses);
        let lookups = cache_hits + cache_misses;
        let per_s = |n: u64| {
            if window_ms == 0 {
                0.0
            } else {
                n as f64 * 1000.0 / window_ms as f64
            }
        };
        let cur = reg.hist(Hist::ServeTotalUs);
        let prev_counts = prev_reg.hist(Hist::ServeTotalUs).bucket_counts();
        let diff: Vec<u64> = cur
            .bucket_counts()
            .iter()
            .zip(prev_counts.iter())
            .map(|(c, p)| c.saturating_sub(*p))
            .collect();
        let width = cur.bucket_width();
        let frame = Frame {
            seq: self.next_seq,
            t_ms: now_ms,
            window_ms,
            requests,
            runs: d(Metric::ServeRuns),
            cached: d(Metric::ServeRunsCached),
            shed,
            errors: d(Metric::ServeErrors),
            cache_hits,
            cache_misses,
            req_s: per_s(requests),
            shed_s: per_s(shed),
            shed_ratio: if requests == 0 { 0.0 } else { shed as f64 / requests as f64 },
            hit_rate: (lookups > 0).then(|| cache_hits as f64 / lookups as f64),
            queue_hwm: reg.gauge(Gauge::ServeQueueDepth),
            in_flight_hwm: reg.gauge(Gauge::ServeInFlight),
            p50_us: delta_percentile(&diff, width, 50.0),
            p99_us: delta_percentile(&diff, width, 99.0),
            p999_us: delta_percentile(&diff, width, 99.9),
        };
        self.next_seq += 1;
        if self.frames.len() == self.cap {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
        self.prev = Some((now_ms, reg.clone()));
        self.frames.back().expect("frame just pushed")
    }

    /// Frames with `seq > since`, oldest first — exactly the frames a
    /// cursor-carrying client has not seen (older frames may have
    /// fallen off the ring; the caller detects that gap by comparing
    /// the first returned `seq` against `since + 1`).
    pub fn since(&self, since: u64) -> impl Iterator<Item = &Frame> {
        self.frames.iter().filter(move |f| f.seq > since)
    }

    /// Renders every frame with `seq > since` as ndjson, one frame per
    /// line (with a trailing newline when any frame rendered).
    pub fn render_since(&self, since: u64) -> String {
        let mut out = String::new();
        for f in self.since(since) {
            out.push_str(&f.to_json());
            out.push('\n');
        }
        out
    }
}

/// SLO thresholds, read from the environment by the daemon. A
/// threshold of zero disables its rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloConfig {
    /// Windowed p99 of `serve.total_us` must stay at or below this
    /// (`NSC_SLO_P99_US`, default 50 000 µs; 0 disables).
    pub p99_us: f64,
    /// Per-window shed ratio (sheds / requests) must stay at or below
    /// this (`NSC_SLO_SHED_RATE`, default 0.05; 0 disables).
    pub shed_rate: f64,
    /// Per-window result-cache hit rate must stay at or above this
    /// (`NSC_SLO_HIT_RATE`, default 0 = disabled — a cold cache is not
    /// an incident unless the operator says so).
    pub hit_rate: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig { p99_us: 50_000.0, shed_rate: 0.05, hit_rate: 0.0 }
    }
}

impl SloConfig {
    /// Reads `NSC_SLO_P99_US` / `NSC_SLO_SHED_RATE` / `NSC_SLO_HIT_RATE`,
    /// keeping the defaults for unset or unparseable values.
    pub fn from_env() -> SloConfig {
        let read = |key: &str, dflt: f64| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|v| v.is_finite() && *v >= 0.0)
                .unwrap_or(dflt)
        };
        let d = SloConfig::default();
        SloConfig {
            p99_us: read("NSC_SLO_P99_US", d.p99_us),
            shed_rate: read("NSC_SLO_SHED_RATE", d.shed_rate),
            hit_rate: read("NSC_SLO_HIT_RATE", d.hit_rate),
        }
    }
}

/// Overall health verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No rule breached in the latest frame.
    Ok,
    /// At least one rule breached, none for `FAILING_STREAK`
    /// consecutive frames yet.
    Degraded,
    /// Some rule has been breached for `FAILING_STREAK` or more
    /// consecutive frames.
    Failing,
}

impl Verdict {
    /// Wire label (`ok` / `degraded` / `failing`).
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Degraded => "degraded",
            Verdict::Failing => "failing",
        }
    }
}

/// Evidence for one SLO rule.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleEval {
    /// Rule name (`p99_us` / `shed_rate` / `hit_rate`).
    pub name: &'static str,
    /// Configured threshold.
    pub threshold: f64,
    /// Observed value in the latest frame, `None` when the frame had
    /// no signal for this rule (no samples / no lookups).
    pub value: Option<f64>,
    /// Whether the latest frame breaches the rule.
    pub breached: bool,
    /// Consecutive breached frames, counting back from the latest.
    pub streak: u64,
}

/// A health report: the verdict plus per-rule evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthReport {
    /// Overall verdict.
    pub verdict: Verdict,
    /// One entry per enabled rule, in fixed order.
    pub rules: Vec<RuleEval>,
    /// Number of frames the evaluation could see.
    pub frames_seen: u64,
}

impl HealthReport {
    /// Renders the report as ndjson: one line per rule, then one
    /// verdict line — mirrors the `timeline` op's frame-per-line shape.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for r in &self.rules {
            let _ = writeln!(
                out,
                "{{\"rule\":\"{}\",\"threshold\":{},\"value\":{},\"breached\":{},\"streak\":{}}}",
                r.name,
                fmt_f64(r.threshold),
                r.value.map_or_else(|| "null".to_owned(), fmt_f64),
                r.breached,
                r.streak,
            );
        }
        let _ = writeln!(
            out,
            "{{\"schema\":\"{SCHEMA}\",\"verdict\":\"{}\",\"rules\":{},\"frames_seen\":{}}}",
            self.verdict.label(),
            self.rules.len(),
            self.frames_seen,
        );
        out
    }
}

/// Evaluates `cfg` against the timeline's most recent frames.
///
/// Each enabled rule inspects the latest frame for its current value
/// and walks backwards to count its breach streak. A rule with no
/// signal in a frame (no completed requests for `p99_us`, no lookups
/// for `hit_rate`) neither breaches nor extends a streak there. An
/// empty timeline is `ok` with zero frames of evidence.
pub fn evaluate(cfg: &SloConfig, tl: &Timeline) -> HealthReport {
    // breach(frame) -> Some(true|false) when the frame carries signal.
    type Probe<'a> = &'a dyn Fn(&Frame) -> Option<bool>;
    let p99 = |f: &Frame| f.p99_us.map(|v| v > cfg.p99_us);
    let shed = |f: &Frame| (f.requests > 0).then_some(f.shed_ratio > cfg.shed_rate);
    let hit = |f: &Frame| f.hit_rate.map(|v| v < cfg.hit_rate);
    let rules: [(&'static str, f64, bool, Probe); 3] = [
        ("p99_us", cfg.p99_us, cfg.p99_us > 0.0, &p99),
        ("shed_rate", cfg.shed_rate, cfg.shed_rate > 0.0, &shed),
        ("hit_rate", cfg.hit_rate, cfg.hit_rate > 0.0, &hit),
    ];
    let mut evals = Vec::new();
    for (name, threshold, enabled, probe) in rules {
        if !enabled {
            continue;
        }
        let latest = tl.latest();
        let value = match name {
            "p99_us" => latest.and_then(|f| f.p99_us),
            "shed_rate" => latest.and_then(|f| (f.requests > 0).then_some(f.shed_ratio)),
            _ => latest.and_then(|f| f.hit_rate),
        };
        let breached = latest.and_then(probe).unwrap_or(false);
        let mut streak = 0u64;
        for f in tl.frames.iter().rev() {
            match probe(f) {
                Some(true) => streak += 1,
                Some(false) => break,
                // No signal: skip the frame without breaking the
                // streak (an idle window should not reset an incident).
                None => continue,
            }
        }
        if !breached {
            streak = 0;
        }
        evals.push(RuleEval { name, threshold, value, breached, streak });
    }
    let worst = evals.iter().map(|r| r.streak).max().unwrap_or(0);
    let verdict = if evals.iter().all(|r| !r.breached) {
        Verdict::Ok
    } else if worst >= FAILING_STREAK {
        Verdict::Failing
    } else {
        Verdict::Degraded
    };
    HealthReport { verdict, rules: evals, frames_seen: tl.len() as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Gauge, Hist, Metric, Registry};

    fn reg(requests: u64, shed: u64, hits: u64, misses: u64, lat_us: &[f64]) -> Registry {
        let mut r = Registry::new();
        for _ in 0..requests {
            r_count(&mut r, Metric::ServeRequests);
        }
        for _ in 0..shed {
            r_count(&mut r, Metric::ServeShed);
        }
        for _ in 0..hits {
            r_count(&mut r, Metric::ResultCacheHits);
        }
        for _ in 0..misses {
            r_count(&mut r, Metric::ResultCacheMisses);
        }
        for &v in lat_us {
            r_observe(&mut r, v);
        }
        r
    }

    // Registry's mutating methods are crate-private by design; tests
    // go through the thread-local install/absorb path instead.
    fn r_count(r: &mut Registry, m: Metric) {
        crate::metrics::install(Registry::new());
        crate::metrics::count(m);
        r.merge(&crate::metrics::uninstall().unwrap());
    }

    fn r_observe(r: &mut Registry, v: f64) {
        crate::metrics::install(Registry::new());
        crate::metrics::observe(Hist::ServeTotalUs, v);
        r.merge(&crate::metrics::uninstall().unwrap());
    }

    #[test]
    fn first_frame_diffs_against_zero() {
        let mut tl = Timeline::new(8);
        let r = reg(10, 2, 3, 1, &[1000.0, 2000.0]);
        let f = tl.sample(1000, &r).clone();
        assert_eq!(f.seq, 1);
        assert_eq!(f.t_ms, 1000);
        assert_eq!(f.window_ms, 1000);
        assert_eq!(f.requests, 10);
        assert_eq!(f.shed, 2);
        assert_eq!(f.req_s, 10.0);
        assert_eq!(f.shed_s, 2.0);
        assert_eq!(f.shed_ratio, 0.2);
        assert_eq!(f.hit_rate, Some(0.75));
        assert!(f.p50_us.is_some() && f.p99_us.is_some() && f.p999_us.is_some());
    }

    #[test]
    fn deltas_are_per_window_not_cumulative() {
        let mut tl = Timeline::new(8);
        let r1 = reg(10, 0, 0, 0, &[]);
        tl.sample(1000, &r1);
        let mut r2 = r1.clone();
        for _ in 0..5 {
            r_count(&mut r2, Metric::ServeRequests);
        }
        let f = tl.sample(3000, &r2).clone();
        assert_eq!(f.requests, 5, "second frame sees only the delta");
        assert_eq!(f.window_ms, 2000);
        assert_eq!(f.req_s, 2.5);
    }

    #[test]
    fn idle_window_has_null_quantiles_and_hit_rate() {
        let mut tl = Timeline::new(8);
        let r = reg(0, 0, 0, 0, &[]);
        tl.sample(1000, &r);
        let f = tl.sample(2000, &r).clone();
        assert_eq!(f.requests, 0);
        assert_eq!(f.hit_rate, None);
        assert_eq!(f.p50_us, None);
        assert_eq!(f.p99_us, None);
        let line = f.to_json();
        assert!(line.contains("\"hit_rate\":null"), "{line}");
        assert!(line.contains("\"p999_us\":null"), "{line}");
    }

    #[test]
    fn ring_wraps_at_cap_and_keeps_seq_monotone() {
        let mut tl = Timeline::new(3);
        let r = reg(0, 0, 0, 0, &[]);
        for t in 1..=7u64 {
            tl.sample(t * 1000, &r);
        }
        assert_eq!(tl.len(), 3);
        let seqs: Vec<u64> = tl.since(0).map(|f| f.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7], "oldest frames fell off the ring");
        assert_eq!(tl.latest().unwrap().seq, 7);
    }

    #[test]
    fn since_cursor_returns_exactly_the_unseen_frames() {
        let mut tl = Timeline::new(10);
        let r = reg(0, 0, 0, 0, &[]);
        for t in 1..=5u64 {
            tl.sample(t * 1000, &r);
        }
        let unseen: Vec<u64> = tl.since(3).map(|f| f.seq).collect();
        assert_eq!(unseen, vec![4, 5]);
        assert_eq!(tl.since(5).count(), 0, "cursor at head sees nothing");
        assert_eq!(tl.since(99).count(), 0, "future cursor sees nothing");
        // Rendered form: one line per unseen frame.
        let nd = tl.render_since(3);
        assert_eq!(nd.lines().count(), 2);
        for line in nd.lines() {
            let doc = crate::json::parse(line).expect("frame parses");
            assert_eq!(
                doc.get("schema").and_then(crate::json::Json::as_str),
                Some(SCHEMA)
            );
        }
    }

    #[test]
    fn windowed_quantiles_come_from_bucket_diffs() {
        let mut tl = Timeline::new(8);
        // First window: fast requests (1 ms).
        let r1 = reg(4, 0, 0, 0, &[1000.0, 1000.0, 1000.0, 1000.0]);
        tl.sample(1000, &r1);
        // Second window: slow requests (10 ms) on top of the same
        // cumulative histogram.
        let mut r2 = r1.clone();
        for _ in 0..4 {
            r_observe(&mut r2, 10_000.0);
        }
        let f = tl.sample(2000, &r2).clone();
        let p50 = f.p50_us.unwrap();
        assert!(p50 > 5000.0, "windowed p50 {p50} must reflect only the slow window");
        // The cumulative histogram's median still sits at the fast mode.
        let cum = r2.hist(Hist::ServeTotalUs).percentile(50.0);
        assert!(cum < 5000.0, "cumulative p50 {cum} spans both windows");
    }

    #[test]
    fn delta_percentile_bounds() {
        assert_eq!(delta_percentile(&[0, 0], 10.0, 50.0), None);
        let counts = [0, 4, 0, 0];
        let p0 = delta_percentile(&counts, 10.0, 0.0).unwrap();
        let p100 = delta_percentile(&counts, 10.0, 100.0).unwrap();
        assert!(p0 >= 10.0 && p100 <= 20.0, "{p0} {p100} stay inside the bucket");
        let p50 = delta_percentile(&counts, 10.0, 50.0).unwrap();
        assert!((10.0..=20.0).contains(&p50));
    }

    #[test]
    fn frames_render_byte_identically_for_equal_inputs() {
        let run = || {
            let mut tl = Timeline::new(8);
            let r1 = reg(7, 1, 2, 2, &[1500.0, 2500.0, 900.0]);
            tl.sample(1000, &r1);
            let mut r2 = r1.clone();
            r_count(&mut r2, Metric::ServeRequests);
            r_observe(&mut r2, 3100.0);
            tl.sample(2000, &r2);
            tl.render_since(0)
        };
        assert_eq!(run(), run(), "same snapshots + ticks, same bytes");
    }

    #[test]
    fn gauges_pass_through() {
        let mut tl = Timeline::new(4);
        let mut r = Registry::new();
        crate::metrics::install(Registry::new());
        crate::metrics::gauge_max(Gauge::ServeQueueDepth, 9.0);
        crate::metrics::gauge_max(Gauge::ServeInFlight, 4.0);
        r.merge(&crate::metrics::uninstall().unwrap());
        let f = tl.sample(1000, &r).clone();
        assert_eq!(f.queue_hwm, 9.0);
        assert_eq!(f.in_flight_hwm, 4.0);
    }

    #[test]
    fn slo_defaults_and_env_gating() {
        let d = SloConfig::default();
        assert_eq!(d.p99_us, 50_000.0);
        assert_eq!(d.shed_rate, 0.05);
        assert_eq!(d.hit_rate, 0.0);
    }

    #[test]
    fn health_ok_on_empty_timeline() {
        let tl = Timeline::new(4);
        let rep = evaluate(&SloConfig::default(), &tl);
        assert_eq!(rep.verdict, Verdict::Ok);
        assert_eq!(rep.frames_seen, 0);
        // hit_rate rule is disabled by default: two enabled rules.
        assert_eq!(rep.rules.len(), 2);
        assert!(rep.to_ndjson().contains("\"verdict\":\"ok\""));
    }

    #[test]
    fn health_degrades_then_fails_on_sustained_breach() {
        let cfg = SloConfig { p99_us: 0.0, shed_rate: 0.5, hit_rate: 0.0 };
        let mut tl = Timeline::new(8);
        let mut r = reg(10, 0, 0, 0, &[]);
        tl.sample(1000, &r);
        assert_eq!(evaluate(&cfg, &tl).verdict, Verdict::Ok);
        // Three successive windows where every request sheds.
        for t in 2..=4u64 {
            let mut next = r.clone();
            for _ in 0..10 {
                r_count(&mut next, Metric::ServeRequests);
                r_count(&mut next, Metric::ServeShed);
            }
            tl.sample(t * 1000, &next);
            r = next;
            let rep = evaluate(&cfg, &tl);
            let shed_rule = rep.rules.iter().find(|x| x.name == "shed_rate").unwrap();
            assert!(shed_rule.breached);
            assert_eq!(shed_rule.streak, t - 1);
            if t > FAILING_STREAK {
                assert_eq!(rep.verdict, Verdict::Failing, "streak {}", t - 1);
            } else {
                assert_eq!(rep.verdict, Verdict::Degraded, "streak {}", t - 1);
            }
        }
        // Recovery: a clean window resets the verdict.
        let mut next = r.clone();
        for _ in 0..10 {
            r_count(&mut next, Metric::ServeRequests);
        }
        tl.sample(5000, &next);
        assert_eq!(evaluate(&cfg, &tl).verdict, Verdict::Ok);
    }

    #[test]
    fn health_report_ndjson_parses() {
        let cfg = SloConfig { p99_us: 100.0, shed_rate: 0.05, hit_rate: 0.9 };
        let mut tl = Timeline::new(4);
        let r = reg(5, 0, 1, 9, &[50_000.0]);
        tl.sample(1000, &r);
        let rep = evaluate(&cfg, &tl);
        assert_eq!(rep.rules.len(), 3);
        let nd = rep.to_ndjson();
        assert_eq!(nd.lines().count(), 4, "3 rules + verdict: {nd}");
        for line in nd.lines() {
            crate::json::parse(line).expect("health line parses");
        }
        assert_eq!(rep.verdict, Verdict::Degraded, "{nd}");
    }
}
