//! A small, fast, deterministic PRNG (xoshiro256**) for input generation
//! and randomized tests.
//!
//! The suite must build and test offline, so it cannot depend on the
//! `rand` crate; this module provides the small surface the workload
//! generators and property tests need. The generator is seeded via
//! SplitMix64 (as recommended by the xoshiro authors), so nearby seeds
//! produce uncorrelated sequences.
//!
//! # Examples
//!
//! ```
//! use nsc_sim::rng::Rng;
//! let mut r = Rng::seed_from_u64(42);
//! let a = r.next_u64();
//! let b = r.next_u64();
//! assert_ne!(a, b);
//! assert!(r.gen_f64() < 1.0);
//! assert!(r.gen_range_u64(10) < 10);
//! ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniform random bits (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` in `[0, bound)` via rejection sampling (no modulo
    /// bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 needs a positive bound");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Reject the tail of the 2^64 space that does not divide evenly.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_range_usize(&mut self, bound: usize) -> usize {
        self.gen_range_u64(bound as u64) as usize
    }

    /// A uniform `bool`.
    #[inline]
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_values_stay_in_bounds_and_cover() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range_u64(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = Rng::seed_from_u64(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn zero_bound_rejected() {
        Rng::seed_from_u64(0).gen_range_u64(0);
    }
}
