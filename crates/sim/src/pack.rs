//! Hand-rolled LZ-style byte compressor for cold-tier cache records.
//!
//! Cache records are line-oriented text full of repeated key prefixes and
//! comma-separated u64 renderings of f64 bit patterns — highly
//! compressible with even a small-window LZ. This module implements a
//! dependency-free LZSS variant: greedy longest-match against a 64 KiB
//! sliding window, found through a 4-byte rolling hash table.
//!
//! The format is a flat token stream:
//!
//! - control byte `c < 0x80`: a literal run of `c + 1` bytes follows
//!   verbatim (runs of up to 128 bytes);
//! - control byte `c >= 0x80`: a back-reference of length
//!   `(c - 0x80) + MIN_MATCH` followed by a 2-byte little-endian
//!   distance (`1..=65535`, may overlap the output for RLE-style runs).
//!
//! Compression is byte-exact and deterministic: `decompress(compress(x))
//! == x` for every input, including arbitrary binary (the f64 bit
//! patterns records rely on survive untouched). There is no header —
//! framing (magic, raw length) belongs to the caller ([`crate::cache`]
//! prefixes stored files so uncompressed legacy entries stay readable).

/// Shortest back-reference worth encoding (a match token costs 3 bytes).
const MIN_MATCH: usize = 4;
/// Longest back-reference one token can encode.
const MAX_MATCH: usize = (0x7f) + MIN_MATCH;
/// Sliding-window reach of the 16-bit distance field.
const MAX_DIST: usize = u16::MAX as usize;
/// Hash-table size (power of two) for the 4-byte match finder.
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data` into the token stream described in the module docs.
///
/// Worst case (incompressible input) the output is `len + len/128 + 1`
/// bytes; callers should keep the original when that happens.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // head[h] = most recent position whose 4-byte prefix hashed to h.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut run = from;
        while run < to {
            let n = (to - run).min(128);
            out.push((n - 1) as u8);
            out.extend_from_slice(&data[run..run + n]);
            run += n;
        }
    };

    while i + MIN_MATCH <= data.len() {
        let h = hash4(&data[i..]);
        let cand = head[h];
        head[h] = i;
        let mut match_len = 0usize;
        if cand != usize::MAX && i - cand <= MAX_DIST && data[cand..cand + MIN_MATCH] == data[i..i + MIN_MATCH] {
            let limit = (data.len() - i).min(MAX_MATCH);
            let mut l = MIN_MATCH;
            while l < limit && data[cand + l] == data[i + l] {
                l += 1;
            }
            match_len = l;
        }
        if match_len >= MIN_MATCH {
            flush_literals(&mut out, lit_start, i);
            let dist = (i - cand) as u16;
            out.push(0x80 + (match_len - MIN_MATCH) as u8);
            out.extend_from_slice(&dist.to_le_bytes());
            // Seed the hash table through the matched region so later
            // repeats of its interior still find a candidate.
            let end = (i + match_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < end {
                head[hash4(&data[j..])] = j;
                j += 1;
            }
            i += match_len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, lit_start, data.len());
    out
}

/// Decompresses a [`compress`] token stream. Returns `None` for any
/// malformed stream (truncated token, distance past the start of the
/// output) rather than panicking — cold-tier files can be damaged.
pub fn decompress(stream: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(stream.len() * 2);
    let mut i = 0usize;
    while i < stream.len() {
        let c = stream[i];
        i += 1;
        if c < 0x80 {
            let n = c as usize + 1;
            if i + n > stream.len() {
                return None;
            }
            out.extend_from_slice(&stream[i..i + n]);
            i += n;
        } else {
            if i + 2 > stream.len() {
                return None;
            }
            let dist = u16::from_le_bytes([stream[i], stream[i + 1]]) as usize;
            i += 2;
            let len = (c - 0x80) as usize + MIN_MATCH;
            if dist == 0 || dist > out.len() {
                return None;
            }
            // Byte-by-byte copy: matches may overlap their own output
            // (dist < len encodes an RLE-style repeat).
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let unpacked = decompress(&packed).expect("well-formed stream");
        assert_eq!(unpacked, data, "round trip must be byte-exact");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_record_text_shrinks() {
        let mut rec = String::from("schema=nsc-run-v1\n");
        for i in 0..200u64 {
            rec.push_str(&format!("stats.row{}=4607182418800017408,{},42\n", i, i * 7));
        }
        let data = rec.as_bytes();
        let packed = compress(data);
        assert!(
            packed.len() * 2 < data.len(),
            "record-like text should compress >2x ({} -> {})",
            data.len(),
            packed.len()
        );
        roundtrip(data);
    }

    #[test]
    fn rle_overlap_runs() {
        roundtrip(&[0u8; 1000]);
        roundtrip("ab".repeat(700).as_bytes());
        roundtrip("xyz".repeat(500).as_bytes());
    }

    #[test]
    fn random_binary_roundtrips() {
        let mut rng = Rng::seed_from_u64(0x9ec4);
        for len in [1usize, 7, 64, 255, 1024, 70_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn f64_bit_patterns_survive() {
        let mut rng = Rng::seed_from_u64(7);
        let mut data = Vec::new();
        for _ in 0..4096 {
            data.extend_from_slice(&rng.next_u64().to_le_bytes());
        }
        // NaN payloads, signed zeros, subnormals: all just bytes here.
        data.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        data.extend_from_slice(&(-0.0f64).to_bits().to_le_bytes());
        roundtrip(&data);
    }

    #[test]
    fn structured_then_random_mix() {
        let mut rng = Rng::seed_from_u64(99);
        let mut data = b"header=1\nheader=1\nheader=1\n".to_vec();
        for _ in 0..5000 {
            data.push(rng.next_u64() as u8);
        }
        data.extend_from_slice(b"trailer,trailer,trailer,trailer");
        roundtrip(&data);
    }

    #[test]
    fn malformed_streams_are_rejected() {
        // Literal run promising more bytes than remain.
        assert_eq!(decompress(&[10, b'a']), None);
        // Match token with truncated distance.
        assert_eq!(decompress(&[0x80, 1]), None);
        // Distance pointing before the start of the output.
        assert_eq!(decompress(&[0x00, b'a', 0x80, 5, 0]), None);
        // Zero distance.
        assert_eq!(decompress(&[0x00, b'a', 0x80, 0, 0]), None);
    }
}
