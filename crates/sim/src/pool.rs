//! A dependency-free thread pool and a deterministic fan-out helper.
//!
//! The evaluation harnesses sweep many completely independent
//! `(workload, mode, config)` simulations; this module lets them run
//! `NSC_JOBS` wide while keeping every observable output bit-identical
//! to a serial run. Two layers:
//!
//! * [`ThreadPool`] — a classic shared-work-queue pool (a `Mutex`'d
//!   `VecDeque` drained by `Condvar`-parked workers, one `JoinHandle`
//!   per worker). Jobs are `FnOnce() + Send + 'static` boxes; `Drop`
//!   closes the queue and joins every worker.
//! * [`run_ordered`] — submits a batch of closures to a pool and
//!   returns their results **in submission order**, regardless of which
//!   worker finished first. This is the primitive the bench `Sweep`
//!   driver builds on: determinism comes from ordering results by
//!   submission index, never by completion time.
//!
//! External crates are not an option in this offline build, so the pool
//! is hand-rolled on `std::sync` only.
//!
//! # Examples
//!
//! ```
//! use nsc_sim::pool::{ThreadPool, run_ordered};
//!
//! let pool = ThreadPool::new(4);
//! let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> =
//!     (0u64..16).map(|i| Box::new(move || i * i) as _).collect();
//! let squares = run_ordered(&pool, tasks);
//! assert_eq!(squares[7], 49); // submission order, not completion order
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between the handle and the workers.
struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when a job is pushed or the queue is closed.
    available: Condvar,
}

struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A fixed-size pool of worker threads draining a shared FIFO queue.
///
/// Workers park on a condition variable while the queue is empty and
/// exit once it is closed *and* drained, so dropping the pool always
/// runs every job that was submitted before the drop.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { jobs: VecDeque::new(), closed: false }),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nsc-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers: handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job. Panics if called after the pool started shutting
    /// down (impossible through the public API, which consumes `self`
    /// only in `Drop`).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.queue.lock().unwrap();
        assert!(!q.closed, "spawn on a closed pool");
        q.jobs.push_back(Box::new(job));
        drop(q);
        self.shared.available.notify_one();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().closed = true;
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            // A worker that panicked already poisoned its job's result
            // channel; the pool itself shuts down cleanly regardless.
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.closed {
                    return;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        job();
    }
}

/// Runs `tasks` on `pool` and returns the results **in submission
/// order**. Blocks until every task has finished.
///
/// Each task's result lands in a slot keyed by its submission index, so
/// the output is independent of scheduling: any worker count (including
/// a single worker, which degenerates to the serial order) produces the
/// same vector. If a task panics, the panic is captured on the worker
/// and re-raised here on the submitting thread, pointing at the failing
/// task's index.
pub fn run_ordered<T: Send + 'static>(
    pool: &ThreadPool,
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
) -> Vec<T> {
    let n = tasks.len();
    // Pool accounting happens here on the submitting thread (not in the
    // racy worker queue), so the recorded batch size and job count are
    // deterministic for any worker count.
    crate::metrics::add(crate::metrics::Metric::PoolJobs, n as u64);
    crate::metrics::gauge_max(crate::metrics::Gauge::PoolQueueDepth, n as f64);
    let slots: Arc<SlotBoard<T>> = Arc::new(SlotBoard::new(n));
    for (idx, task) in tasks.into_iter().enumerate() {
        let slots = Arc::clone(&slots);
        pool.spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(task));
            slots.fill(idx, outcome);
        });
    }
    slots.wait_all(n)
}

/// Result slots plus a countdown the submitter parks on.
struct SlotBoard<T> {
    state: Mutex<SlotState<T>>,
    done: Condvar,
}

struct SlotState<T> {
    slots: Vec<Option<std::thread::Result<T>>>,
    filled: usize,
}

impl<T> SlotBoard<T> {
    fn new(n: usize) -> Self {
        SlotBoard {
            state: Mutex::new(SlotState {
                slots: (0..n).map(|_| None).collect(),
                filled: 0,
            }),
            done: Condvar::new(),
        }
    }

    fn fill(&self, idx: usize, value: std::thread::Result<T>) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(st.slots[idx].is_none(), "slot {idx} filled twice");
        st.slots[idx] = Some(value);
        st.filled += 1;
        if st.filled == st.slots.len() {
            self.done.notify_all();
        }
    }

    fn wait_all(&self, n: usize) -> Vec<T> {
        let mut st = self.state.lock().unwrap();
        while st.filled < n {
            st = self.done.wait(st).unwrap();
        }
        let outcomes: Vec<_> = st.slots.drain(..).collect();
        drop(st);
        outcomes
            .into_iter()
            .map(|slot| match slot.expect("all slots filled") {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }
}

/// The worker count requested by the environment: `NSC_JOBS` if set to
/// a positive integer, otherwise [`std::thread::available_parallelism`]
/// (1 if that is unavailable).
pub fn jobs_from_env() -> usize {
    match std::env::var("NSC_JOBS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("warning: ignoring invalid NSC_JOBS={v:?} (want a positive integer)");
                default_jobs()
            }
        },
        Err(_) => default_jobs(),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_before_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..64 {
                let c = Arc::clone(&counter);
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // Drop joins the workers after the queue drains.
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn run_ordered_preserves_submission_order() {
        let pool = ThreadPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..100usize)
            .map(|i| {
                Box::new(move || {
                    // Stagger finish times so completion order differs
                    // from submission order.
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((100 - i) % 7) as u64 * 50,
                    ));
                    i * 3
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = run_ordered(&pool, tasks);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let build = || {
            (0..40u64)
                .map(|i| Box::new(move || i.wrapping_mul(0x9E3779B9)) as Box<dyn FnOnce() -> u64 + Send>)
                .collect::<Vec<_>>()
        };
        let serial = run_ordered(&ThreadPool::new(1), build());
        let wide = run_ordered(&ThreadPool::new(8), build());
        assert_eq!(serial, wide);
    }

    #[test]
    fn task_panic_propagates_to_submitter() {
        let pool = ThreadPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom in task")),
            Box::new(|| 3),
        ];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| run_ordered(&pool, tasks)));
        assert!(err.is_err(), "panic inside a task must reach the caller");
    }

    #[test]
    fn jobs_env_parsing() {
        // Only checks the default path is sane; env mutation is racy in
        // the threaded test harness so NSC_JOBS itself is exercised by
        // the integration tests that spawn dedicated processes.
        assert!(default_jobs() >= 1);
    }
}
