//! Structured trace events with zero-cost-when-disabled emission and a
//! Chrome trace-event exporter.
//!
//! The simulator's timing models call [`emit`] (for discrete events) and
//! [`sample`] (for periodic occupancy counters) at interesting points:
//! stream configuration/steps, cache hits/misses and coherence actions,
//! NoC messages, range-sync decisions, and SE_L3 offload/migration
//! choices. When no tracer is installed the only cost is one relaxed
//! atomic load and the event-constructing closure is never run, so
//! instrumented hot paths stay at full speed in normal benchmarking.
//!
//! Enable tracing by installing a sink:
//!
//! ```
//! use nsc_sim::trace::{self, RingRecorder, TraceEvent};
//! use nsc_sim::Cycle;
//!
//! trace::install(RingRecorder::new(1024), 64);
//! trace::emit(|| TraceEvent::StreamEnd { at: Cycle(10), core: 0, stream: 0, consumed: 4 });
//! let rec = trace::uninstall().unwrap();
//! assert_eq!(rec.len(), 1);
//! ```
//!
//! Recorded events can be exported with [`chrome::write_file`] and opened
//! in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.

use crate::time::Cycle;
use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Cache level touched by a [`TraceEvent::CacheAccess`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceLevel {
    /// Private L1 data cache.
    L1,
    /// Private L2.
    L2,
    /// Shared NUCA L3 bank.
    L3,
    /// Main memory.
    Dram,
}

impl TraceLevel {
    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            TraceLevel::L1 => "L1",
            TraceLevel::L2 => "L2",
            TraceLevel::L3 => "L3",
            TraceLevel::Dram => "DRAM",
        }
    }
}

/// Phase of a range-based synchronization interaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPhase {
    /// A stream registered (or re-reported) its address range.
    Acquire,
    /// A core access or peer stream overlapped a registered range.
    Conflict,
    /// A range registration was retired at kernel end or commit.
    Release,
}

impl SyncPhase {
    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            SyncPhase::Acquire => "acquire",
            SyncPhase::Conflict => "conflict",
            SyncPhase::Release => "release",
        }
    }
}

/// Core id used for events originating at an L3 stream engine rather than
/// a core-side agent.
pub const SE_L3_CORE: u16 = u16::MAX;

/// One structured observation from a timing model.
///
/// Durations carry `start`/`end` cycles; instantaneous observations carry
/// a single `at` cycle. All ids are small integers matching the simulated
/// topology (core/tile index, per-core stream slot, L3 bank).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A stream was configured on a core (and possibly offloaded).
    StreamConfig {
        /// Configuration completion time.
        at: Cycle,
        /// Configuring core.
        core: u16,
        /// Per-core stream slot.
        stream: u16,
        /// Home L3 bank chosen for the stream's first element.
        bank: u16,
        /// Offload style label (see `OffloadStyle`).
        style: &'static str,
    },
    /// One element (or iteration slice) of stream work.
    StreamStep {
        /// Dispatch time.
        start: Cycle,
        /// Completion time.
        end: Cycle,
        /// Owning core.
        core: u16,
        /// Per-core stream slot.
        stream: u16,
        /// L3 bank the element was served from.
        bank: u16,
    },
    /// A stream finished its kernel.
    StreamEnd {
        /// Retirement time.
        at: Cycle,
        /// Owning core.
        core: u16,
        /// Per-core stream slot.
        stream: u16,
        /// Elements consumed over the kernel.
        consumed: u64,
    },
    /// An offloaded stream migrated between L3 banks.
    StreamMigrate {
        /// Migration time.
        at: Cycle,
        /// Owning core.
        core: u16,
        /// Per-core stream slot.
        stream: u16,
        /// Bank left behind.
        from_bank: u16,
        /// New home bank.
        to_bank: u16,
    },
    /// The deferred-probe policy (or configuration) picked an offload style.
    OffloadDecision {
        /// Decision time.
        at: Cycle,
        /// Owning core.
        core: u16,
        /// Per-core stream slot.
        stream: u16,
        /// Chosen style label.
        style: &'static str,
        /// Why it was chosen (e.g. `probe-streaming`).
        reason: &'static str,
    },
    /// A demand access resolved at some level of the hierarchy.
    CacheAccess {
        /// Issue time.
        start: Cycle,
        /// Data-return time.
        end: Cycle,
        /// Requesting core ([`SE_L3_CORE`] for stream-engine accesses).
        core: u16,
        /// Level that served the access.
        level: TraceLevel,
        /// Whether the access was a store/atomic.
        write: bool,
    },
    /// A directory-driven coherence action.
    Coherence {
        /// Action time.
        at: Cycle,
        /// Core whose private copy was affected.
        core: u16,
        /// Cache-line address.
        line: u64,
        /// Action label (`invalidate`, `writeback`, ...).
        kind: &'static str,
    },
    /// An MRSW line-lock hold at an L3 bank.
    Lock {
        /// Acquisition time (after any wait).
        start: Cycle,
        /// Release time.
        end: Cycle,
        /// Locked line address.
        line: u64,
        /// Exclusive (writer) vs shared (reader).
        exclusive: bool,
        /// Cycles spent waiting before acquisition.
        waited: u64,
    },
    /// A NoC message traversing the mesh.
    NocMsg {
        /// Injection time.
        start: Cycle,
        /// Arrival time at destination.
        end: Cycle,
        /// Source tile.
        src: u16,
        /// Destination tile.
        dst: u16,
        /// Payload size.
        bytes: u32,
        /// Manhattan hop count.
        hops: u16,
        /// Message class label (`data`/`control`/`offloaded`).
        class: &'static str,
    },
    /// A range-based synchronization phase transition.
    RangeSync {
        /// Event time.
        at: Cycle,
        /// Core owning the stream.
        core: u16,
        /// Per-core stream slot.
        stream: u16,
        /// Acquire / conflict / release.
        phase: SyncPhase,
    },
    /// A fault was injected by [`crate::fault`].
    Fault {
        /// Injection time.
        at: Cycle,
        /// Core (or tile) at which the fault fired; [`SE_L3_CORE`] for
        /// bank-side faults without a core-side agent.
        core: u16,
        /// Fault-site label (see `nsc_sim::fault::FaultSite::label`).
        site: &'static str,
    },
    /// A recovery action taken in response to an injected fault.
    Recovery {
        /// Action time.
        at: Cycle,
        /// Core owning the affected work.
        core: u16,
        /// Per-core stream slot, or `u16::MAX` when not stream-scoped.
        stream: u16,
        /// Action label (`retry`, `migrate`, `fallback`, `replay`,
        /// `retransmit`).
        action: &'static str,
    },
    /// A sampled occupancy value for a counter track.
    CounterSample {
        /// Sample time.
        at: Cycle,
        /// Track name (e.g. `se.queue`, `noc.links_busy`).
        track: &'static str,
        /// Sub-track id (core, bank or link index).
        id: u16,
        /// Sampled value.
        value: f64,
    },
    /// A consultation of the content-addressed result cache
    /// ([`crate::cache`]) before a simulation point ran.
    ResultCache {
        /// Consultation time (host-side; `Cycle(0)` before simulation).
        at: Cycle,
        /// High 64 bits of the 128-bit request digest.
        key: u64,
        /// Whether a stored result was replayed instead of simulating.
        hit: bool,
    },
}

impl TraceEvent {
    /// The timestamp used for ordering: start time for duration events.
    pub fn time(&self) -> Cycle {
        match *self {
            TraceEvent::StreamConfig { at, .. }
            | TraceEvent::StreamEnd { at, .. }
            | TraceEvent::StreamMigrate { at, .. }
            | TraceEvent::OffloadDecision { at, .. }
            | TraceEvent::Coherence { at, .. }
            | TraceEvent::RangeSync { at, .. }
            | TraceEvent::Fault { at, .. }
            | TraceEvent::Recovery { at, .. }
            | TraceEvent::CounterSample { at, .. }
            | TraceEvent::ResultCache { at, .. } => at,
            TraceEvent::StreamStep { start, .. }
            | TraceEvent::CacheAccess { start, .. }
            | TraceEvent::Lock { start, .. }
            | TraceEvent::NocMsg { start, .. } => start,
        }
    }
}

/// Receives trace events; implementations decide retention policy.
pub trait TraceSink: Send {
    /// Records one event.
    fn record(&mut self, ev: TraceEvent);
}

/// A bounded in-memory recorder: keeps the first `capacity` events and
/// counts the rest as dropped, so a runaway trace cannot exhaust memory
/// while the interesting warm-up phase is preserved.
#[derive(Debug)]
pub struct RingRecorder {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// Creates a recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Recorded events in arrival order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events rejected after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the recorder, returning its events (arrival order) and
    /// drop count — used when a recorder outlives its install window,
    /// e.g. `nscd` keeping one run's events in its per-request store.
    pub fn into_events(self) -> (Vec<TraceEvent>, u64) {
        (self.events.into(), self.dropped)
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push_back(ev);
        } else {
            self.dropped += 1;
        }
    }
}

/// Generation counter: odd while a tracer is installed somewhere. A single
/// relaxed load of this is the entire disabled-path cost of [`emit`].
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

struct Tracer {
    sink: RingRecorder,
    sample_every: u64,
    last_sample: HashMap<(&'static str, u16), u64>,
}

thread_local! {
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

/// Installs `sink` as the active tracer for this thread.
///
/// `sample_every` sets the minimum cycle spacing between retained
/// [`sample`] observations per counter track (1 keeps every sample).
/// Replaces any previously installed tracer, discarding its events.
pub fn install(sink: RingRecorder, sample_every: u64) {
    let replaced = TRACER.with(|t| {
        t.borrow_mut()
            .replace(Tracer {
                sink,
                sample_every: sample_every.max(1),
                last_sample: HashMap::new(),
            })
            .is_some()
    });
    if !replaced {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
    }
}

/// Removes the active tracer and returns its recorder, or `None` if
/// tracing was not enabled on this thread.
pub fn uninstall() -> Option<RingRecorder> {
    let prev = TRACER.with(|t| t.borrow_mut().take());
    if prev.is_some() {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
    prev.map(|tr| tr.sink)
}

/// Appends every event of `rec` (plus its drop count) to the tracer
/// installed on *this* thread, honouring that tracer's capacity.
///
/// This is how parallel sweeps merge traces deterministically: each run
/// records into its own recorder on whatever worker executes it, and
/// the driver absorbs the recorders back into the main-thread tracer in
/// submission order — so the merged trace is a function of the run
/// order, never of completion timing. A no-op (discarding `rec`) when
/// no tracer is installed here.
pub fn absorb(rec: RingRecorder) {
    TRACER.with(|t| {
        if let Some(tr) = t.borrow_mut().as_mut() {
            let RingRecorder { events, dropped, .. } = rec;
            for ev in events {
                tr.sink.record(ev);
            }
            tr.sink.dropped += dropped;
        }
    });
}

/// Whether any tracer is installed (fast, approximate across threads).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Emits an event if tracing is enabled; `f` never runs when disabled.
#[inline]
pub fn emit(f: impl FnOnce() -> TraceEvent) {
    if !active() {
        return;
    }
    emit_slow(f);
}

#[cold]
fn emit_slow(f: impl FnOnce() -> TraceEvent) {
    TRACER.with(|t| {
        if let Some(tr) = t.borrow_mut().as_mut() {
            tr.sink.record(f());
        }
    });
}

/// Records an occupancy sample for counter track `track`, sub-track `id`,
/// if tracing is enabled and at least `sample_every` cycles have passed
/// since the last retained sample of that (track, id) pair. The value
/// closure `f` only runs for retained samples.
#[inline]
pub fn sample(track: &'static str, id: u16, at: Cycle, f: impl FnOnce() -> f64) {
    if !active() {
        return;
    }
    sample_slow(track, id, at, f);
}

#[cold]
fn sample_slow(track: &'static str, id: u16, at: Cycle, f: impl FnOnce() -> f64) {
    TRACER.with(|t| {
        if let Some(tr) = t.borrow_mut().as_mut() {
            let due = match tr.last_sample.get(&(track, id)) {
                Some(&last) => at.0 >= last.saturating_add(tr.sample_every),
                None => true,
            };
            if due {
                tr.last_sample.insert((track, id), at.0);
                let value = f();
                tr.sink.record(TraceEvent::CounterSample {
                    at,
                    track,
                    id,
                    value,
                });
            }
        }
    });
}

/// Chrome trace-event (Trace Event Format) export, loadable by Perfetto
/// and `chrome://tracing`.
///
/// Layout: one "process" per subsystem (streams, cache, NoC, sync,
/// counters), with per-core / per-tile threads, duration (`"X"`) events
/// for spans and counter (`"C"`) events for sampled occupancy. One
/// simulated cycle is rendered as one microsecond.
pub mod chrome {
    use super::{SyncPhase, TraceEvent, SE_L3_CORE};
    use crate::json::escape;
    use std::collections::BTreeMap;

    const PID_STREAMS: u32 = 1;
    const PID_CACHE: u32 = 2;
    const PID_NOC: u32 = 3;
    const PID_SYNC: u32 = 4;
    const PID_COUNTERS: u32 = 5;
    const PID_FAULTS: u32 = 6;
    /// Host-side serving spans ([`crate::span`]); present only in
    /// documents produced by [`render_with_spans`].
    const PID_SERVE: u32 = 7;

    fn core_tid(core: u16) -> u32 {
        if core == SE_L3_CORE {
            // Group SE_L3-originated work on a dedicated high thread id.
            1_000_000
        } else {
            core as u32
        }
    }

    fn stream_tid(core: u16, stream: u16) -> u32 {
        core_tid(core) * 64 + stream as u32
    }

    struct Writer {
        out: String,
        first: bool,
        threads: BTreeMap<(u32, u32), String>,
        /// Added to every emitted `ts`: lets sim events (cycle-based,
        /// starting at 0) be re-anchored onto an absolute host-µs
        /// timeline next to serving spans.
        offset: u64,
    }

    impl Writer {
        fn event(&mut self, body: &str) {
            if !self.first {
                self.out.push_str(",\n");
            }
            self.first = false;
            self.out.push_str(body);
        }

        fn duration(&mut self, name: &str, pid: u32, tid: u32, ts: u64, dur: u64, args: &str) {
            let dur = dur.max(1); // zero-width spans are invisible in Perfetto
            let ts = ts + self.offset;
            let body = format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur}{args}}}",
                escape(name)
            );
            self.event(&body);
        }

        fn instant(&mut self, name: &str, pid: u32, tid: u32, ts: u64, args: &str) {
            let ts = ts + self.offset;
            let body = format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}{args}}}",
                escape(name)
            );
            self.event(&body);
        }

        fn counter(&mut self, name: &str, pid: u32, tid: u32, ts: u64, value: f64) {
            let ts = ts + self.offset;
            let body = format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{{\"value\":{}}}}}",
                escape(name),
                crate::json::fmt_f64(value)
            );
            self.event(&body);
        }

        fn name_thread(&mut self, pid: u32, tid: u32, name: String) {
            self.threads.entry((pid, tid)).or_insert(name);
        }
    }

    /// Renders `events` as a complete Chrome trace-event JSON document.
    pub fn render<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
        render_inner(events, None)
    }

    /// Renders one request's serving spans *and* its simulator events on
    /// a single timeline. Serving spans land under a dedicated `serve`
    /// process at their absolute host-µs timestamps; sim events (whose
    /// cycles render as µs, one cycle = 1 µs) are shifted to start at the
    /// `simulate` span's start, so the cycle-level tracks visually fill
    /// the simulate slice of the request.
    pub fn render_with_spans<'a>(
        events: impl IntoIterator<Item = &'a TraceEvent>,
        tree: &crate::span::SpanTree,
    ) -> String {
        render_inner(events, Some(tree))
    }

    fn render_inner<'a>(
        events: impl IntoIterator<Item = &'a TraceEvent>,
        spans: Option<&crate::span::SpanTree>,
    ) -> String {
        let mut w = Writer {
            out: String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"),
            first: true,
            threads: BTreeMap::new(),
            offset: 0,
        };
        // Process-name metadata first so Perfetto labels the groups.
        for (pid, name) in [
            (PID_STREAMS, "streams"),
            (PID_CACHE, "cache"),
            (PID_NOC, "noc"),
            (PID_SYNC, "range-sync"),
            (PID_COUNTERS, "occupancy"),
            (PID_FAULTS, "faults"),
        ] {
            let body = format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{name}\"}}}}"
            );
            w.event(&body);
        }
        if let Some(tree) = spans {
            let body = format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_SERVE},\"tid\":0,\"args\":{{\"name\":\"serve\"}}}}"
            );
            w.event(&body);
            w.name_thread(PID_SERVE, 0, format!("request {:016x}", tree.request_id));
            let args = format!(",\"args\":{{\"request_id\":\"{:016x}\"}}", tree.request_id);
            w.duration("request", PID_SERVE, 0, tree.start_us, tree.wall_us, &args);
            for s in &tree.spans {
                w.duration(s.name, PID_SERVE, 0, tree.start_us + s.start_us, s.dur_us, "");
            }
            // Anchor the sim tracks at the simulate span's start.
            w.offset = tree.start_us + tree.span("simulate").map_or(0, |s| s.start_us);
        }
        for ev in events {
            write_event(&mut w, ev);
        }
        let threads = std::mem::take(&mut w.threads);
        for ((pid, tid), name) in threads {
            let body = format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                escape(&name)
            );
            w.event(&body);
        }
        w.out.push_str("\n]}\n");
        w.out
    }

    fn stream_thread_name(core: u16, stream: u16) -> String {
        if core == SE_L3_CORE {
            format!("se_l3 s{stream}")
        } else {
            format!("core{core} s{stream}")
        }
    }

    fn write_event(w: &mut Writer, ev: &TraceEvent) {
        match *ev {
            TraceEvent::StreamConfig {
                at,
                core,
                stream,
                bank,
                style,
            } => {
                let tid = stream_tid(core, stream);
                w.name_thread(PID_STREAMS, tid, stream_thread_name(core, stream));
                let args = format!(",\"args\":{{\"bank\":{bank},\"style\":\"{style}\"}}");
                w.instant("config", PID_STREAMS, tid, at.0, &args);
            }
            TraceEvent::StreamStep {
                start,
                end,
                core,
                stream,
                bank,
            } => {
                let tid = stream_tid(core, stream);
                w.name_thread(PID_STREAMS, tid, stream_thread_name(core, stream));
                let args = format!(",\"args\":{{\"bank\":{bank}}}");
                let dur = end.0.saturating_sub(start.0);
                w.duration("step", PID_STREAMS, tid, start.0, dur, &args);
            }
            TraceEvent::StreamEnd {
                at,
                core,
                stream,
                consumed,
            } => {
                let tid = stream_tid(core, stream);
                w.name_thread(PID_STREAMS, tid, stream_thread_name(core, stream));
                let args = format!(",\"args\":{{\"consumed\":{consumed}}}");
                w.instant("end", PID_STREAMS, tid, at.0, &args);
            }
            TraceEvent::StreamMigrate {
                at,
                core,
                stream,
                from_bank,
                to_bank,
            } => {
                let tid = stream_tid(core, stream);
                w.name_thread(PID_STREAMS, tid, stream_thread_name(core, stream));
                let args =
                    format!(",\"args\":{{\"from_bank\":{from_bank},\"to_bank\":{to_bank}}}");
                w.instant("migrate", PID_STREAMS, tid, at.0, &args);
            }
            TraceEvent::OffloadDecision {
                at,
                core,
                stream,
                style,
                reason,
            } => {
                let tid = stream_tid(core, stream);
                w.name_thread(PID_STREAMS, tid, stream_thread_name(core, stream));
                let args = format!(",\"args\":{{\"style\":\"{style}\",\"reason\":\"{reason}\"}}");
                w.instant("offload", PID_STREAMS, tid, at.0, &args);
            }
            TraceEvent::CacheAccess {
                start,
                end,
                core,
                level,
                write,
            } => {
                let tid = core_tid(core);
                let who = if core == SE_L3_CORE {
                    "se_l3".to_owned()
                } else {
                    format!("core{core}")
                };
                w.name_thread(PID_CACHE, tid, who);
                let name = format!("{}{}", level.label(), if write { " st" } else { "" });
                let dur = end.0.saturating_sub(start.0);
                w.duration(&name, PID_CACHE, tid, start.0, dur, "");
            }
            TraceEvent::Coherence { at, core, line, kind } => {
                let tid = core_tid(core);
                w.name_thread(PID_CACHE, tid, format!("core{core}"));
                let args = format!(",\"args\":{{\"line\":{line}}}");
                w.instant(kind, PID_CACHE, tid, at.0, &args);
            }
            TraceEvent::Lock {
                start,
                end,
                line,
                exclusive,
                waited,
            } => {
                w.name_thread(PID_SYNC, 0, "line-locks".to_owned());
                let name = if exclusive { "lock excl" } else { "lock shared" };
                let args = format!(",\"args\":{{\"line\":{line},\"waited\":{waited}}}");
                let dur = end.0.saturating_sub(start.0);
                w.duration(name, PID_SYNC, 0, start.0, dur, &args);
            }
            TraceEvent::NocMsg {
                start,
                end,
                src,
                dst,
                bytes,
                hops,
                class,
            } => {
                let tid = src as u32;
                w.name_thread(PID_NOC, tid, format!("tile{src}"));
                let args =
                    format!(",\"args\":{{\"dst\":{dst},\"bytes\":{bytes},\"hops\":{hops}}}");
                let dur = end.0.saturating_sub(start.0);
                w.duration(class, PID_NOC, tid, start.0, dur, &args);
            }
            TraceEvent::RangeSync {
                at,
                core,
                stream,
                phase,
            } => {
                let tid = core_tid(core) + 1;
                w.name_thread(PID_SYNC, tid, format!("core{core}"));
                let args = format!(",\"args\":{{\"stream\":{stream}}}");
                match phase {
                    SyncPhase::Acquire | SyncPhase::Release | SyncPhase::Conflict => {
                        w.instant(phase.label(), PID_SYNC, tid, at.0, &args);
                    }
                }
            }
            TraceEvent::Fault { at, core, site } => {
                let tid = core_tid(core);
                let who = if core == SE_L3_CORE {
                    "se_l3".to_owned()
                } else {
                    format!("core{core}")
                };
                w.name_thread(PID_FAULTS, tid, who);
                w.instant(site, PID_FAULTS, tid, at.0, "");
            }
            TraceEvent::Recovery {
                at,
                core,
                stream,
                action,
            } => {
                let tid = core_tid(core);
                w.name_thread(PID_FAULTS, tid, format!("core{core}"));
                let args = format!(",\"args\":{{\"stream\":{stream}}}");
                w.instant(action, PID_FAULTS, tid, at.0, &args);
            }
            TraceEvent::CounterSample {
                at,
                track,
                id,
                value,
            } => {
                let tid = id as u32;
                w.name_thread(PID_COUNTERS, tid, format!("{track}[{id}]"));
                w.counter(track, PID_COUNTERS, tid, at.0, value);
            }
            TraceEvent::ResultCache { at, key, hit } => {
                let tid = 2_000_000;
                w.name_thread(PID_CACHE, tid, "result-cache".to_owned());
                let args = format!(",\"args\":{{\"key\":\"{key:016x}\"}}");
                let name = if hit { "cache hit" } else { "cache miss" };
                w.instant(name, PID_CACHE, tid, at.0, &args);
            }
        }
    }

    /// Renders `events` and writes the document to `path`.
    pub fn write_file<'a>(
        path: &std::path::Path,
        events: impl IntoIterator<Item = &'a TraceEvent>,
    ) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, render(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn step(t: u64) -> TraceEvent {
        TraceEvent::StreamStep {
            start: Cycle(t),
            end: Cycle(t + 4),
            core: 1,
            stream: 0,
            bank: 3,
        }
    }

    #[test]
    fn disabled_emit_never_runs_closure() {
        assert!(uninstall().is_none());
        let mut ran = false;
        emit(|| {
            ran = true;
            step(0)
        });
        assert!(!ran);
    }

    #[test]
    fn install_records_and_uninstall_returns() {
        install(RingRecorder::new(8), 1);
        assert!(active());
        emit(|| step(5));
        emit(|| TraceEvent::StreamEnd {
            at: Cycle(9),
            core: 1,
            stream: 0,
            consumed: 1,
        });
        let rec = uninstall().unwrap();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.events().next().unwrap().time(), Cycle(5));
    }

    #[test]
    fn absorb_appends_in_order_and_respects_capacity() {
        install(RingRecorder::new(3), 1);
        emit(|| step(1));
        let mut worker = RingRecorder::new(8);
        worker.record(step(2));
        worker.record(step(3));
        worker.record(step(4)); // exceeds the main tracer's capacity
        absorb(worker);
        let rec = uninstall().unwrap();
        let times: Vec<Cycle> = rec.events().map(|e| e.time()).collect();
        assert_eq!(times, vec![Cycle(1), Cycle(2), Cycle(3)]);
        assert_eq!(rec.dropped(), 1);
        // With no tracer installed, absorb discards silently.
        let mut stray = RingRecorder::new(2);
        stray.record(step(9));
        absorb(stray);
        assert!(uninstall().is_none());
    }

    #[test]
    fn absorb_carries_worker_drop_counts() {
        install(RingRecorder::new(16), 1);
        let mut worker = RingRecorder::new(1);
        worker.record(step(2));
        worker.record(step(3)); // dropped on the worker
        absorb(worker);
        let rec = uninstall().unwrap();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.dropped(), 1, "worker-side drops must be preserved");
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut r = RingRecorder::new(2);
        for t in 0..5 {
            r.record(step(t));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn sampler_rate_limits_per_track() {
        install(RingRecorder::new(64), 10);
        sample("se.queue", 0, Cycle(0), || 1.0);
        sample("se.queue", 0, Cycle(5), || 2.0); // suppressed: within 10 cycles
        sample("se.queue", 1, Cycle(5), || 3.0); // different id: kept
        sample("se.queue", 0, Cycle(10), || 4.0); // due again
        let rec = uninstall().unwrap();
        let values: Vec<f64> = rec
            .events()
            .map(|e| match e {
                TraceEvent::CounterSample { value, .. } => *value,
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(values, vec![1.0, 3.0, 4.0]);
    }

    #[test]
    fn chrome_render_is_valid_json_with_expected_shape() {
        let events = [
            TraceEvent::StreamConfig {
                at: Cycle(0),
                core: 0,
                stream: 1,
                bank: 2,
                style: "NearStream",
            },
            step(4),
            TraceEvent::NocMsg {
                start: Cycle(2),
                end: Cycle(12),
                src: 0,
                dst: 7,
                bytes: 64,
                hops: 5,
                class: "data",
            },
            TraceEvent::CounterSample {
                at: Cycle(8),
                track: "noc.links_busy",
                id: 0,
                value: 3.5,
            },
            TraceEvent::RangeSync {
                at: Cycle(6),
                core: 2,
                stream: 0,
                phase: SyncPhase::Conflict,
            },
        ];
        let doc = json::parse(&chrome::render(events.iter())).expect("valid JSON");
        let list = doc.get("traceEvents").and_then(json::Json::as_arr).unwrap();
        // 5 process_name metas + 5 events + thread_name metas.
        assert!(list.len() >= 10);
        let phases: Vec<&str> = list
            .iter()
            .filter_map(|e| e.get("ph").and_then(json::Json::as_str))
            .collect();
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"C"));
        assert!(phases.contains(&"M"));
        assert!(phases.contains(&"i"));
        // Every event has pid/ts or is metadata.
        for e in list {
            assert!(e.get("ph").is_some());
            assert!(e.get("pid").is_some());
        }
    }

    #[test]
    fn into_events_preserves_order_and_drops() {
        let mut r = RingRecorder::new(2);
        for t in 0..3 {
            r.record(step(t));
        }
        let (events, dropped) = r.into_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].time(), Cycle(0));
        assert_eq!(dropped, 1);
    }

    #[test]
    fn render_with_spans_merges_serve_and_sim_timelines() {
        let mut st = crate::span::SpanTrace::begin_at(0xAB, 1000);
        st.push("accept", 1000, 1010);
        st.push("simulate", 1010, 1500);
        let tree = st.finish();
        let events = [step(4)];
        let doc = json::parse(&chrome::render_with_spans(events.iter(), &tree)).unwrap();
        let list = doc.get("traceEvents").and_then(json::Json::as_arr).unwrap();
        // The serve process is named and carries the request root.
        assert!(list.iter().any(|e| {
            e.get("ph").and_then(json::Json::as_str) == Some("M")
                && e.get("pid").and_then(json::Json::as_f64) == Some(7.0)
        }));
        let root = list
            .iter()
            .find(|e| e.get("name").and_then(json::Json::as_str) == Some("request"))
            .expect("request root span present");
        assert_eq!(root.get("ts").and_then(json::Json::as_f64), Some(1000.0));
        // The sim step (cycle 4) is re-anchored at simulate's absolute
        // start: 1000 + 10 + 4.
        let step_ev = list
            .iter()
            .find(|e| e.get("name").and_then(json::Json::as_str) == Some("step"))
            .expect("sim step present");
        assert_eq!(step_ev.get("ts").and_then(json::Json::as_f64), Some(1014.0));
        // Plain render is unchanged: the same step sits at its raw cycle.
        let plain = json::parse(&chrome::render(events.iter())).unwrap();
        let plain_step = plain
            .get("traceEvents")
            .and_then(json::Json::as_arr)
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(json::Json::as_str) == Some("step"))
            .unwrap()
            .get("ts")
            .and_then(json::Json::as_f64);
        assert_eq!(plain_step, Some(4.0));
    }

    #[test]
    fn zero_duration_spans_get_min_width() {
        let ev = TraceEvent::StreamStep {
            start: Cycle(7),
            end: Cycle(7),
            core: 0,
            stream: 0,
            bank: 0,
        };
        let doc = json::parse(&chrome::render([&ev])).unwrap();
        let list = doc.get("traceEvents").and_then(json::Json::as_arr).unwrap();
        let span = list
            .iter()
            .find(|e| e.get("ph").and_then(json::Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("dur").and_then(json::Json::as_f64), Some(1.0));
    }
}
