//! Bandwidth-limited resources modelled with next-free-time bookkeeping.

use crate::time::Cycle;

/// A serially-occupied resource: a NoC link, a DRAM channel, a scalar PE.
///
/// A request arriving at time `now` that occupies the resource for `busy`
/// cycles starts at `max(now, next_free)` and pushes `next_free` forward.
/// This is the classic next-free-time approximation of queueing delay: it
/// models sustained-bandwidth contention without simulating individual
/// buffer slots.
///
/// # Examples
///
/// ```
/// use nsc_sim::{Cycle, Resource};
///
/// let mut link = Resource::new();
/// assert_eq!(link.acquire(Cycle(0), 4), Cycle(0)); // starts immediately
/// assert_eq!(link.acquire(Cycle(1), 4), Cycle(4)); // queues behind first
/// assert_eq!(link.acquire(Cycle(100), 4), Cycle(100)); // idle gap
/// ```
#[derive(Clone, Debug, Default)]
pub struct Resource {
    next_free: Cycle,
    busy_cycles: u64,
    requests: u64,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Resource::default()
    }

    /// Occupies the resource for `busy` cycles starting no earlier than
    /// `now`, returning the actual start time.
    pub fn acquire(&mut self, now: Cycle, busy: u64) -> Cycle {
        let start = now.max(self.next_free);
        self.next_free = start + busy;
        self.busy_cycles += busy;
        self.requests += 1;
        start
    }

    /// The earliest time a new request could start service.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total cycles of occupancy accumulated so far.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Utilization over the interval `[0, horizon]` as a fraction in `[0,1]`.
    ///
    /// Returns 0 for a zero horizon.
    pub fn utilization(&self, horizon: Cycle) -> f64 {
        if horizon.raw() == 0 {
            0.0
        } else {
            (self.busy_cycles as f64 / horizon.raw() as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(Cycle(0), 10), Cycle(0));
        assert_eq!(r.acquire(Cycle(0), 10), Cycle(10));
        assert_eq!(r.acquire(Cycle(0), 10), Cycle(20));
        assert_eq!(r.busy_cycles(), 30);
        assert_eq!(r.requests(), 3);
    }

    #[test]
    fn idle_gaps_do_not_accumulate() {
        let mut r = Resource::new();
        r.acquire(Cycle(0), 2);
        assert_eq!(r.acquire(Cycle(50), 2), Cycle(50));
        assert_eq!(r.next_free(), Cycle(52));
        assert_eq!(r.busy_cycles(), 4);
    }

    #[test]
    fn utilization_bounds() {
        let mut r = Resource::new();
        r.acquire(Cycle(0), 50);
        assert!((r.utilization(Cycle(100)) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(Cycle(0)), 0.0);
        r.acquire(Cycle(0), 1000);
        assert_eq!(r.utilization(Cycle(100)), 1.0); // clamped
    }

    #[test]
    fn zero_busy_acquire_is_free() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(Cycle(5), 0), Cycle(5));
        assert_eq!(r.next_free(), Cycle(5));
    }
}

/// A time-indexed bandwidth ledger: capacity per fixed epoch, bookable at
/// any timestamp (including out of call order).
///
/// [`Resource`] serializes requests in *call* order, which is wrong for
/// models where causally-independent requests carry very different
/// timestamps (a future-time acquisition would block an earlier one). The
/// ledger instead tracks how much capacity each epoch has left, so a
/// request booked at time `t` only competes with traffic that actually
/// overlaps `t`.
///
/// # Examples
///
/// ```
/// use nsc_sim::{Cycle, resource::BandwidthLedger};
///
/// // 16-cycle epochs, 16 units per epoch (1 unit/cycle).
/// let mut l = BandwidthLedger::new(16, 16);
/// let t1 = l.book(Cycle(1000), 8);
/// assert!(t1 >= Cycle(1008));
/// // An *earlier* request is not blocked by the future booking.
/// let t0 = l.book(Cycle(0), 8);
/// assert!(t0 < Cycle(100));
/// ```
#[derive(Clone, Debug)]
pub struct BandwidthLedger {
    epoch_cycles: u64,
    capacity: u32,
    /// Ring buffer of per-epoch usage, starting at `base_epoch`.
    used: std::collections::VecDeque<u32>,
    base_epoch: u64,
    total_booked: u64,
    /// Every epoch below this is fully booked (amortizes scans when the
    /// resource saturates).
    full_below: u64,
    /// History window in epochs.
    window: usize,
}

/// Default history window of a ledger, in epochs. Bookings dated further
/// than this behind the frontier are clamped to the window start (slightly
/// conservative; real retro-dating in the models spans at most a few
/// hundred cycles of memory latency).
const LEDGER_WINDOW: usize = 1 << 13;

impl BandwidthLedger {
    /// Creates a ledger with `capacity` units available per `epoch_cycles`
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(epoch_cycles: u64, capacity: u32) -> BandwidthLedger {
        Self::with_window(epoch_cycles, capacity, LEDGER_WINDOW)
    }

    /// Like [`BandwidthLedger::new`] with an explicit history window in
    /// epochs (smaller windows bound memory for per-line lock ledgers).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn with_window(epoch_cycles: u64, capacity: u32, window: usize) -> BandwidthLedger {
        assert!(
            epoch_cycles > 0 && capacity > 0 && window > 0,
            "ledger needs positive shape"
        );
        BandwidthLedger {
            epoch_cycles,
            capacity,
            used: std::collections::VecDeque::new(),
            base_epoch: 0,
            total_booked: 0,
            full_below: 0,
            window,
        }
    }

    /// Ensures `epoch` is addressable; returns its ring index.
    fn index_of(&mut self, epoch: u64) -> usize {
        debug_assert!(epoch >= self.base_epoch);
        let mut idx = (epoch - self.base_epoch) as usize;
        // Slide the window when the frontier outruns it.
        if idx >= self.window {
            let shift = idx + 1 - self.window;
            if shift >= self.used.len() {
                self.used.clear();
            } else {
                self.used.drain(..shift);
            }
            self.base_epoch += shift as u64;
            self.full_below = self.full_below.max(self.base_epoch);
            idx = (epoch - self.base_epoch) as usize;
        }
        while self.used.len() <= idx {
            self.used.push_back(0);
        }
        idx
    }

    /// Books `units` of capacity starting no earlier than `now`; returns
    /// the completion time of the booked transfer.
    pub fn book(&mut self, now: Cycle, units: u64) -> Cycle {
        if units == 0 {
            return now;
        }
        self.total_booked += units;
        // A booking dated before the history window is served from
        // forgotten (free) capacity: clamping it to the frontier would
        // let one far-future burst serialize all earlier traffic — a
        // positive-feedback artifact, not a model of anything physical.
        if now.raw() / self.epoch_cycles < self.base_epoch {
            return now + units * self.epoch_cycles / self.capacity as u64;
        }
        let mut epoch = (now.raw() / self.epoch_cycles)
            .max(self.base_epoch)
            .max(self.full_below);
        let mut remaining = units;
        #[allow(unused_assignments)]
        let mut last_used_in_epoch = 0u32;
        loop {
            let idx = self.index_of(epoch);
            let cap = self.capacity;
            let slot = &mut self.used[idx];
            let spare = (cap - *slot) as u64;
            let take = spare.min(remaining);
            *slot += take as u32;
            remaining -= take;
            last_used_in_epoch = *slot;
            // Advance the saturation watermark over contiguously-full
            // epochs.
            if epoch == self.full_below && *slot >= cap {
                self.full_below += 1;
            }
            if remaining == 0 {
                break;
            }
            epoch += 1;
        }
        let fill_time =
            epoch * self.epoch_cycles + last_used_in_epoch as u64 * self.epoch_cycles / self.capacity as u64;
        // Never earlier than pure serialization from `now`.
        Cycle(fill_time).max(now + units * self.epoch_cycles / self.capacity as u64)
    }

/// Total units booked so far.
    pub fn total_booked(&self) -> u64 {
        self.total_booked
    }
}

#[cfg(test)]
mod ledger_tests {
    use super::*;

    #[test]
    fn serializes_within_epoch() {
        let mut l = BandwidthLedger::new(16, 16);
        let a = l.book(Cycle(0), 8);
        let b = l.book(Cycle(0), 8);
        let c = l.book(Cycle(0), 8);
        assert_eq!(a, Cycle(8));
        assert_eq!(b, Cycle(16));
        assert!(c > b); // spills into the next epoch
    }

    #[test]
    fn future_booking_does_not_block_past() {
        let mut l = BandwidthLedger::new(16, 16);
        // 50k cycles apart: well within the ledger window.
        let far = l.book(Cycle(50_000), 16);
        assert!(far >= Cycle(50_016));
        let near = l.book(Cycle(0), 16);
        assert!(near <= Cycle(32), "near booking delayed to {near}");
    }

    #[test]
    fn window_slides_with_the_frontier() {
        let mut l = BandwidthLedger::new(16, 16);
        l.book(Cycle(0), 8);
        // A booking far in the future slides the window; earlier bookings
        // clamp to the window start but still complete.
        let far = l.book(Cycle(100_000_000), 16);
        assert!(far >= Cycle(100_000_016));
        let clamped = l.book(Cycle(0), 8);
        assert!(clamped.raw() > 0);
    }

    #[test]
    fn saturation_pushes_completion_forward() {
        let mut l = BandwidthLedger::new(16, 16);
        // Book 10 epochs worth at once.
        let t = l.book(Cycle(0), 160);
        assert!(t >= Cycle(160));
        // Next small booking lands after the backlog.
        let t2 = l.book(Cycle(0), 1);
        assert!(t2 >= Cycle(160));
    }

    #[test]
    fn zero_units_booking_is_free() {
        let mut l = BandwidthLedger::new(16, 16);
        assert_eq!(l.book(Cycle(123), 0), Cycle(123));
        assert_eq!(l.total_booked(), 0);
    }

    #[test]
    fn counts_bookings() {
        let mut l = BandwidthLedger::new(8, 8);
        l.book(Cycle(0), 3);
        l.book(Cycle(0), 4);
        assert_eq!(l.total_booked(), 7);
    }

    #[test]
    #[should_panic(expected = "positive shape")]
    fn rejects_zero_shape() {
        let _ = BandwidthLedger::new(0, 4);
    }
}
