//! Content-addressed, tiered result cache.
//!
//! Simulation points are pure functions of their canonical run request
//! (program, parameters, configuration, execution mode, fault plan), so
//! their results are addressable artifacts: the higher layers digest the
//! request into a [`Key`] and store/retrieve the encoded result through a
//! [`CacheStore`]. A warm cache turns a multi-minute sweep re-run into a
//! memory or directory scan.
//!
//! The production store is [`TieredCache`]:
//!
//! ```text
//!   lookup(key) ──► hot tier (in-memory LRU, NSC_CACHE_MEM_BYTES)
//!                      │ miss                         ▲ promote on hit
//!                      ▼                              │
//!                   cold tier (sharded disk files ────┘
//!                      NSC_CACHE_DISK_BYTES budget, LRU eviction,
//!                      optional NSC_CACHE_COMPRESS record packing)
//!                      │ miss
//!                      ▼
//!                   simulate + store (disk, then hot)
//! ```
//!
//! The hot tier holds decoded record blobs so repeat hits never touch
//! disk; the cold tier is the durable sharded blob store
//! (`<dir>/<shard>/<key>.run`) that PR 4 introduced, now bounded by a
//! byte budget with least-recently-stamped eviction and optional
//! [`crate::pack`] compression (bit-exact for the f64 bit patterns
//! records rely on; uncompressed legacy entries stay readable).
//!
//! This module is deliberately value-agnostic: it maps keys to UTF-8
//! blobs. What goes into the digest and how results are encoded lives
//! with the types being cached (`near_stream::RunRequest`), keeping the
//! dependency direction sim → core intact.
//!
//! Arming: the cache is consulted only when the `NSC_CACHE` environment
//! variable is set to a non-empty value other than `0` *and* no runtime
//! override disabled it ([`set_disabled`], used by the `--no-cache`
//! flag). `NSC_RESULTS_DIR` relocates the `results/` root, and
//! `NSC_CACHE_DIR` overrides the cache directory outright. Tier budgets:
//! `NSC_CACHE_MEM_BYTES` (hot tier, default 64 MiB, `0` disables the
//! tier), `NSC_CACHE_DISK_BYTES` (cold tier, default `0` = unbounded),
//! both accepting `k`/`m`/`g` suffixes. `NSC_CACHE_COMPRESS=1` packs
//! cold-tier records. All are latched at first [`shared`] use.
//!
//! Per-tier hits/misses/stores/evictions are tracked in [`CacheStats`];
//! harness reports surface the totals in the `host` block, next to
//! `jobs` and `wall_ms`, because they legitimately differ between a cold
//! and a warm run of otherwise identical work.
//!
//! # Examples
//!
//! ```
//! use nsc_sim::cache::{Digest, Key};
//!
//! let mut d = Digest::new("example-schema-v1");
//! d.str("histogram");
//! d.u64(42);
//! let key: Key = d.finish();
//! let mut d2 = Digest::new("example-schema-v1");
//! d2.str("histogram");
//! d2.u64(43); // one-field perturbation
//! assert_ne!(key, d2.finish());
//! // Keys round-trip through their hex rendering (inspector addressing).
//! assert_eq!(Key::parse_hex(&key.hex()), Some(key));
//! ```

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::metrics::{self, Metric};

/// A 128-bit content digest, rendered as 32 hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    hi: u64,
    lo: u64,
}

impl Key {
    /// The 32-hex-digit rendering used as the on-disk file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// The high 64 bits (used to tag trace events compactly).
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// The low 64 bits (with [`Key::hi`], names the full key).
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Parses the 32-hex-digit rendering back into a key (the inverse of
    /// [`Key::hex`]), so inspectors can address entries by name.
    pub fn parse_hex(s: &str) -> Option<Key> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Key { hi, lo })
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.hex())
    }
}

/// An incremental 128-bit digest over the canonical byte encoding of a
/// run request.
///
/// Two independent FNV-1a-style lanes (distinct offset bases and primes)
/// are mixed through a splitmix64 finalizer. This is not cryptographic —
/// the threat model is accidental collision between the few thousand
/// distinct simulation points of an evaluation campaign, for which
/// 128 bits of well-mixed state is comfortable.
#[derive(Clone, Debug)]
pub struct Digest {
    a: u64,
    b: u64,
    len: u64,
}

impl Digest {
    /// Starts a digest, folding in `schema` first so any schema/version
    /// bump invalidates every previously stored entry.
    pub fn new(schema: &str) -> Digest {
        let mut d = Digest {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
            len: 0,
        };
        d.str(schema);
        d
    }

    /// Folds raw bytes into the digest.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
            self.b = (self.b ^ byte as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (self.b >> 29);
        }
        self.len = self.len.wrapping_add(bytes.len() as u64);
    }

    /// Folds a length-prefixed string (prefixing prevents `"ab" + "c"`
    /// from colliding with `"a" + "bc"` across field boundaries).
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// Folds one little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` by bit pattern (distinguishes `0.0` from `-0.0`;
    /// NaN payloads fold as-is, which is fine for configuration data).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Finalizes into a [`Key`].
    pub fn finish(&self) -> Key {
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        Key {
            hi: mix(self.a ^ mix(self.len)),
            lo: mix(self.b.wrapping_add(mix(self.a.rotate_left(32)))),
        }
    }
}

static DISABLED: AtomicBool = AtomicBool::new(false);

fn env_armed() -> bool {
    static ARMED: OnceLock<bool> = OnceLock::new();
    *ARMED.get_or_init(|| {
        matches!(std::env::var("NSC_CACHE"), Ok(v) if !v.is_empty() && v != "0")
    })
}

/// Whether cache consultation is armed (`NSC_CACHE=1` and not overridden
/// by [`set_disabled`]).
pub fn enabled() -> bool {
    env_armed() && !DISABLED.load(Ordering::Relaxed)
}

/// Runtime override: `set_disabled(true)` forces the cache off even when
/// `NSC_CACHE` is set (the `--no-cache` harness flag).
pub fn set_disabled(disabled: bool) {
    DISABLED.store(disabled, Ordering::Relaxed);
}

/// The cache root: `NSC_CACHE_DIR`, else `<results dir>/.cache` where the
/// results dir honors `NSC_RESULTS_DIR` exactly like the bench reports.
pub fn dir() -> PathBuf {
    if let Some(d) = std::env::var_os("NSC_CACHE_DIR") {
        return PathBuf::from(d);
    }
    std::env::var_os("NSC_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
        .join(".cache")
}

/// Hot-tier default when `NSC_CACHE_MEM_BYTES` is unset.
const DEFAULT_MEM_BUDGET: u64 = 64 << 20;
/// Flat per-entry bookkeeping charge in the hot tier, on top of blob
/// bytes (map slot, key, stamps). Keeps a million tiny entries from
/// reading as "free".
const MEM_ENTRY_OVERHEAD: u64 = 64;

fn parse_bytes(s: &str) -> Option<u64> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mult) = match t.strip_suffix(|c: char| matches!(c, 'k' | 'm' | 'g')) {
        Some(head) => {
            let mult = match t.as_bytes()[t.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            };
            (head.trim_end(), mult)
        }
        None => (t.as_str(), 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

fn env_bytes(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) if !v.trim().is_empty() => parse_bytes(&v).unwrap_or(default),
        _ => default,
    }
}

/// Per-tier counters and occupancy, snapshotted by [`CacheStore::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Lookups answered by this tier.
    pub hits: u64,
    /// Lookups this tier could not answer (for the hot tier: fell
    /// through to disk, whether or not disk then hit).
    pub misses: u64,
    /// Records written into this tier (hot: inserts + promotions).
    pub stores: u64,
    /// Records expelled to stay within the byte budget.
    pub evictions: u64,
    /// Resident payload bytes (hot: blob + fixed overhead per entry;
    /// cold: file bytes, post-compression).
    pub bytes: u64,
    /// Resident record count.
    pub entries: u64,
}

/// Whole-store statistics: one [`TierStats`] per tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hot: TierStats,
    pub cold: TierStats,
}

impl CacheStats {
    /// Total lookups answered from cache, either tier. Matches the
    /// pre-tier process-wide hit counter: a warm replay of a cold run
    /// reports the same total no matter which tier served it.
    pub fn hits(&self) -> u64 {
        self.hot.hits + self.cold.hits
    }

    /// Total lookups no tier could answer (the run had to simulate).
    /// Hot-tier fall-throughs that the cold tier absorbed are *not*
    /// misses at this level.
    pub fn misses(&self) -> u64 {
        self.cold.misses
    }
}

/// Where a single key currently lives ([`TieredCache::probe`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KeyProbe {
    /// Resident in the in-memory hot tier.
    pub in_hot: bool,
    /// Present in the on-disk cold tier.
    pub in_cold: bool,
    /// Stored size: cold file bytes if on disk, else hot blob bytes.
    pub bytes: u64,
    /// Hot-tier hits served for this key since it was (re)admitted.
    pub hits: u64,
}

/// A key-to-blob result store. Implementations must be safe to share
/// across sweep workers ([`TieredCache`] is the production store; tests
/// inject tiny-budget instances to force evictions).
pub trait CacheStore: Send + Sync {
    /// Looks `key` up, counting a hit or miss. Returns the stored blob.
    ///
    /// Unreadable, missing, or corrupt-compressed entries are misses; a
    /// corrupt *decoded* record is the caller's to detect when decoding
    /// (and to overwrite via [`CacheStore::store`]).
    fn lookup(&self, key: &Key) -> Option<String>;

    /// Stores `blob` under `key` durably (and into the hot tier).
    fn store(&self, key: &Key, blob: &str) -> io::Result<()>;

    /// Peeks at `key` without touching hit/miss counters (daemon status
    /// probes and the degraded cache-only admission check).
    fn contains(&self, key: &Key) -> bool;

    /// Deletes every cached entry in every tier, returning how many
    /// durable entries were removed.
    fn purge(&self) -> io::Result<usize>;

    /// Snapshots per-tier counters and occupancy.
    fn stats(&self) -> CacheStats;

    /// Zeroes hit/miss/store/eviction counters (occupancy is left
    /// alone). The daemon's per-window accounting.
    fn reset_stats(&self);
}

// ---------------------------------------------------------------------
// Hot tier: size-budgeted in-memory LRU over decoded record blobs.
// ---------------------------------------------------------------------

struct MemEntry {
    blob: String,
    /// Monotonic access stamp; unique per entry (the tier clock only
    /// moves under the tier lock), so LRU eviction has a total order and
    /// is deterministic for a given access sequence.
    stamp: u64,
    hits: u64,
}

#[derive(Default)]
struct MemInner {
    map: HashMap<Key, MemEntry>,
    bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    stores: u64,
    evictions: u64,
}

struct MemTier {
    budget: u64,
    inner: Mutex<MemInner>,
}

impl MemTier {
    fn new(budget: u64) -> MemTier {
        MemTier {
            budget,
            inner: Mutex::new(MemInner::default()),
        }
    }

    fn cost(blob: &str) -> u64 {
        blob.len() as u64 + MEM_ENTRY_OVERHEAD
    }

    fn get(&self, key: &Key) -> Option<String> {
        if self.budget == 0 {
            return None;
        }
        let mut guard = self.inner.lock().unwrap();
        let inner = &mut *guard;
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                entry.hits += 1;
                let blob = entry.blob.clone();
                inner.hits += 1;
                Some(blob)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn insert(&self, key: &Key, blob: &str) {
        let cost = MemTier::cost(blob);
        if self.budget == 0 || cost > self.budget {
            return; // tier off, or one entry alone would overflow it
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) = inner.map.insert(
            *key,
            MemEntry {
                blob: blob.to_string(),
                stamp,
                hits: 0,
            },
        ) {
            inner.bytes -= MemTier::cost(&old.blob);
        }
        inner.bytes += cost;
        inner.stores += 1;
        // Evict least-recently-stamped first; stamps are unique, so the
        // victim order is fully determined by the access sequence.
        while inner.bytes > self.budget {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(k, e)| (e.stamp, **k))
                .map(|(k, _)| *k)
                .expect("over budget implies at least one resident entry");
            let gone = inner.map.remove(&victim).unwrap();
            inner.bytes -= MemTier::cost(&gone.blob);
            inner.evictions += 1;
            metrics::count_global(Metric::CacheHotEvictions, 1);
        }
    }

    fn contains(&self, key: &Key) -> bool {
        self.budget > 0 && self.inner.lock().unwrap().map.contains_key(key)
    }

    fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.bytes = 0;
    }

    fn stats(&self) -> TierStats {
        let inner = self.inner.lock().unwrap();
        TierStats {
            hits: inner.hits,
            misses: inner.misses,
            stores: inner.stores,
            evictions: inner.evictions,
            bytes: inner.bytes,
            entries: inner.map.len() as u64,
        }
    }

    fn reset_stats(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.hits = 0;
        inner.misses = 0;
        inner.stores = 0;
        inner.evictions = 0;
    }

    fn hottest(&self, n: usize) -> Vec<(Key, u64)> {
        let inner = self.inner.lock().unwrap();
        let mut all: Vec<(Key, u64)> = inner.map.iter().map(|(k, e)| (*k, e.hits)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    fn probe(&self, key: &Key) -> Option<(u64, u64)> {
        let inner = self.inner.lock().unwrap();
        inner.map.get(key).map(|e| (e.blob.len() as u64, e.hits))
    }
}

// ---------------------------------------------------------------------
// Cold tier: the sharded on-disk blob store, now byte-budgeted with
// LRU-by-access-stamp eviction and optional record compression.
// ---------------------------------------------------------------------

/// File prefix for compressed cold-tier entries: magic, then the raw
/// length as 8 little-endian bytes, then the [`crate::pack`] stream.
/// Files without the magic are read as plain UTF-8 (pre-compression
/// entries remain valid).
const PACK_MAGIC: &[u8; 6] = b"NSCZ1\n";

#[derive(Clone, Copy)]
struct DiskMeta {
    bytes: u64,
    stamp: u64,
}

#[derive(Default)]
struct DiskIndex {
    entries: BTreeMap<Key, DiskMeta>,
    bytes: u64,
}

struct DiskTier {
    dir: PathBuf,
    budget: u64,
    compress: bool,
    /// Lazily-built occupancy index: `None` until the first operation
    /// that needs sizes (budgeted store, stats). Once built it is kept
    /// in sync by every store/lookup/evict.
    index: Mutex<Option<DiskIndex>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

impl DiskTier {
    fn new(dir: PathBuf, budget: u64, compress: bool) -> DiskTier {
        DiskTier {
            dir,
            budget,
            compress,
            index: Mutex::new(None),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn entry_path(&self, key: &Key) -> PathBuf {
        let hex = key.hex();
        // 256-way sharding on the first byte keeps directories small
        // even for campaigns with tens of thousands of points.
        self.dir.join(&hex[..2]).join(format!("{hex}.run"))
    }

    fn decode_file(bytes: Vec<u8>) -> Option<String> {
        if let Some(payload) = bytes.strip_prefix(PACK_MAGIC.as_slice()) {
            if payload.len() < 8 {
                return None;
            }
            let raw_len = u64::from_le_bytes(payload[..8].try_into().ok()?);
            let raw = crate::pack::decompress(&payload[8..])?;
            if raw.len() as u64 != raw_len {
                return None;
            }
            String::from_utf8(raw).ok()
        } else {
            String::from_utf8(bytes).ok()
        }
    }

    fn lookup(&self, key: &Key) -> Option<(String, u64)> {
        let path = self.entry_path(key);
        let blob = std::fs::read(&path).ok().and_then(DiskTier::decode_file);
        match blob {
            Some(blob) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                self.touch(key, file_bytes);
                Some((blob, file_bytes))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Bumps the access stamp so budget eviction sees this key as
    /// recently used. A no-op until the index is built.
    fn touch(&self, key: &Key, file_bytes: u64) {
        let mut guard = self.index.lock().unwrap();
        if let Some(idx) = guard.as_mut() {
            let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
            match idx.entries.get_mut(key) {
                Some(meta) => meta.stamp = stamp,
                None => {
                    idx.entries.insert(
                        *key,
                        DiskMeta {
                            bytes: file_bytes,
                            stamp,
                        },
                    );
                    idx.bytes += file_bytes;
                }
            }
        }
    }

    fn store(&self, key: &Key, blob: &str) -> io::Result<()> {
        let payload: Vec<u8> = if self.compress {
            let packed = crate::pack::compress(blob.as_bytes());
            let framed_len = PACK_MAGIC.len() + 8 + packed.len();
            if framed_len < blob.len() {
                let mut framed = Vec::with_capacity(framed_len);
                framed.extend_from_slice(PACK_MAGIC);
                framed.extend_from_slice(&(blob.len() as u64).to_le_bytes());
                framed.extend_from_slice(&packed);
                framed
            } else {
                blob.as_bytes().to_vec() // compression did not pay
            }
        } else {
            blob.as_bytes().to_vec()
        };
        let path = self.entry_path(key);
        let shard = path.parent().expect("entry path has a shard directory");
        std::fs::create_dir_all(shard)?;
        // Atomic store: the write lands in a unique temp file first and
        // is renamed into place, so concurrent sweep workers computing
        // the same point never observe a torn entry.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = shard.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &payload)?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        self.stores.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.index.lock().unwrap();
        if self.budget > 0 && guard.is_none() {
            *guard = Some(self.scan());
        }
        if let Some(idx) = guard.as_mut() {
            let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
            let new_bytes = payload.len() as u64;
            if let Some(old) = idx.entries.insert(
                *key,
                DiskMeta {
                    bytes: new_bytes,
                    stamp,
                },
            ) {
                idx.bytes -= old.bytes;
            }
            idx.bytes += new_bytes;
            if self.budget > 0 {
                self.evict_locked(idx);
            }
        }
        Ok(())
    }

    /// Removes least-recently-stamped entries until the tier fits its
    /// budget again, always sparing the most recent entry so a budget
    /// smaller than one record still caches the latest point.
    fn evict_locked(&self, idx: &mut DiskIndex) {
        while idx.bytes > self.budget && idx.entries.len() > 1 {
            let victim = idx
                .entries
                .iter()
                .min_by_key(|(k, m)| (m.stamp, **k))
                .map(|(k, _)| *k)
                .expect("over budget implies a resident entry");
            let meta = idx.entries.remove(&victim).unwrap();
            idx.bytes -= meta.bytes;
            let _ = std::fs::remove_file(self.entry_path(&victim));
            self.evictions.fetch_add(1, Ordering::Relaxed);
            metrics::count_global(Metric::CacheColdEvictions, 1);
        }
    }

    /// Walks the shard directories into a fresh index. Entries are
    /// stamped in key order so a rebuilt index evicts deterministically
    /// regardless of directory-listing order.
    fn scan(&self) -> DiskIndex {
        let mut idx = DiskIndex::default();
        let shards = match std::fs::read_dir(&self.dir) {
            Ok(s) => s,
            Err(_) => return idx,
        };
        for shard in shards.flatten() {
            let shard = shard.path();
            if !shard.is_dir() {
                continue;
            }
            let Ok(entries) = std::fs::read_dir(&shard) else {
                continue;
            };
            for entry in entries.flatten() {
                let p = entry.path();
                if p.extension().is_none_or(|e| e != "run") {
                    continue;
                }
                let Some(key) = p
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(Key::parse_hex)
                else {
                    continue;
                };
                let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
                idx.entries.insert(key, DiskMeta { bytes, stamp: 0 });
                idx.bytes += bytes;
            }
        }
        for (i, meta) in idx.entries.values_mut().enumerate() {
            meta.stamp = i as u64 + 1;
        }
        self.clock
            .fetch_max(idx.entries.len() as u64 + 1, Ordering::Relaxed);
        idx
    }

    fn ensure_index(&self) {
        let mut guard = self.index.lock().unwrap();
        if guard.is_none() {
            *guard = Some(self.scan());
        }
    }

    fn contains(&self, key: &Key) -> bool {
        self.entry_path(key).exists()
    }

    fn purge(&self) -> io::Result<usize> {
        let mut removed = 0;
        let shards = match std::fs::read_dir(&self.dir) {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        for shard in shards {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(&shard)? {
                let p = entry?.path();
                if p.extension().is_some_and(|e| e == "run") {
                    std::fs::remove_file(&p)?;
                    removed += 1;
                }
            }
        }
        *self.index.lock().unwrap() = Some(DiskIndex::default());
        Ok(removed)
    }

    fn stats(&self) -> TierStats {
        self.ensure_index();
        let guard = self.index.lock().unwrap();
        let idx = guard.as_ref().expect("index just ensured");
        TierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: idx.bytes,
            entries: idx.entries.len() as u64,
        }
    }

    fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.stores.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    fn probe(&self, key: &Key) -> Option<u64> {
        std::fs::metadata(self.entry_path(key)).ok().map(|m| m.len())
    }
}

// ---------------------------------------------------------------------
// The tiered store.
// ---------------------------------------------------------------------

/// Hot-over-cold [`CacheStore`]: an in-memory LRU above the sharded
/// on-disk blob store. See the module docs for the tier diagram and the
/// environment knobs; [`shared`] holds the process-wide instance, and
/// tests construct tiny-budget instances via [`TieredCache::with_config`]
/// to force evictions without touching the environment.
pub struct TieredCache {
    mem: MemTier,
    disk: DiskTier,
}

impl TieredCache {
    /// Builds a store with explicit tier budgets (bytes; `0` disables
    /// the hot tier / unbounds the cold tier) rooted at `dir`.
    pub fn with_config(dir: PathBuf, mem_bytes: u64, disk_bytes: u64, compress: bool) -> TieredCache {
        TieredCache {
            mem: MemTier::new(mem_bytes),
            disk: DiskTier::new(dir, disk_bytes, compress),
        }
    }

    fn from_env() -> TieredCache {
        let compress =
            matches!(std::env::var("NSC_CACHE_COMPRESS"), Ok(v) if !v.is_empty() && v != "0");
        TieredCache::with_config(
            dir(),
            env_bytes("NSC_CACHE_MEM_BYTES", DEFAULT_MEM_BUDGET),
            env_bytes("NSC_CACHE_DISK_BYTES", 0),
            compress,
        )
    }

    /// Hot-tier byte budget (`0` = tier disabled).
    pub fn mem_budget(&self) -> u64 {
        self.mem.budget
    }

    /// Cold-tier byte budget (`0` = unbounded).
    pub fn disk_budget(&self) -> u64 {
        self.disk.budget
    }

    /// Whether cold-tier records are stored compressed.
    pub fn compression(&self) -> bool {
        self.disk.compress
    }

    /// The cold tier's root directory.
    pub fn root(&self) -> &Path {
        &self.disk.dir
    }

    /// The `n` hot-tier keys with the most hits since admission, hottest
    /// first (ties broken by key for stable output).
    pub fn hottest(&self, n: usize) -> Vec<(Key, u64)> {
        self.mem.hottest(n)
    }

    /// Per-key residency for the inspector: which tiers hold `key`, its
    /// stored size, and its hot-tier hit count.
    pub fn probe(&self, key: &Key) -> KeyProbe {
        let hot = self.mem.probe(key);
        let cold_bytes = self.disk.probe(key);
        KeyProbe {
            in_hot: hot.is_some(),
            in_cold: cold_bytes.is_some(),
            bytes: cold_bytes.or(hot.map(|(b, _)| b)).unwrap_or(0),
            hits: hot.map(|(_, h)| h).unwrap_or(0),
        }
    }
}

impl CacheStore for TieredCache {
    fn lookup(&self, key: &Key) -> Option<String> {
        if let Some(blob) = self.mem.get(key) {
            metrics::count(Metric::ResultCacheHits);
            metrics::count_global(Metric::CacheHotHits, 1);
            return Some(blob);
        }
        if self.mem.budget > 0 {
            metrics::count_global(Metric::CacheHotMisses, 1);
        }
        match self.disk.lookup(key) {
            Some((blob, _)) => {
                metrics::count(Metric::ResultCacheHits);
                metrics::count_global(Metric::CacheColdHits, 1);
                // Promote: the next hit is memory-speed.
                self.mem.insert(key, &blob);
                Some(blob)
            }
            None => {
                metrics::count(Metric::ResultCacheMisses);
                metrics::count_global(Metric::CacheColdMisses, 1);
                None
            }
        }
    }

    fn store(&self, key: &Key, blob: &str) -> io::Result<()> {
        let res = self.disk.store(key, blob);
        if res.is_ok() {
            metrics::count(Metric::ResultCacheStores);
            metrics::count_global(Metric::CacheColdStores, 1);
        }
        // Hot admission happens even if the durable store failed (disk
        // full): the process can still replay its own points.
        self.mem.insert(key, blob);
        res
    }

    fn contains(&self, key: &Key) -> bool {
        // Hot first: the degraded cache-only path answers warm probes
        // without any disk I/O.
        self.mem.contains(key) || self.disk.contains(key)
    }

    fn purge(&self) -> io::Result<usize> {
        self.mem.clear();
        self.disk.purge()
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hot: self.mem.stats(),
            cold: self.disk.stats(),
        }
    }

    fn reset_stats(&self) {
        self.mem.reset_stats();
        self.disk.reset_stats();
    }
}

/// The process-wide store, configured from the environment at first use
/// (`RunRequest::run_cached`, the daemon's probe/inspect paths, and the
/// harness host block all share it).
pub fn shared() -> &'static TieredCache {
    static SHARED: OnceLock<TieredCache> = OnceLock::new();
    SHARED.get_or_init(TieredCache::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(parts: &[&str]) -> Key {
        let mut d = Digest::new("test-v1");
        for p in parts {
            d.str(p);
        }
        d.finish()
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nsc-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        assert_eq!(key_of(&["a", "b"]), key_of(&["a", "b"]));
        assert_ne!(key_of(&["a", "b"]), key_of(&["a", "c"]));
        // Length prefixing: shifting bytes across a field boundary must
        // change the key.
        assert_ne!(key_of(&["ab", "c"]), key_of(&["a", "bc"]));
        assert_ne!(key_of(&[""]), key_of(&[]));
    }

    #[test]
    fn digest_schema_bump_invalidates() {
        let mut v1 = Digest::new("v1");
        v1.u64(7);
        let mut v2 = Digest::new("v2");
        v2.u64(7);
        assert_ne!(v1.finish(), v2.finish());
    }

    #[test]
    fn digest_f64_bit_pattern() {
        let mut a = Digest::new("v");
        a.f64(0.0);
        let mut b = Digest::new("v");
        b.f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn key_hex_roundtrips() {
        let k = key_of(&["x"]);
        assert_eq!(k.hex().len(), 32);
        assert_eq!(k.to_string(), k.hex());
        assert_eq!(Key::parse_hex(&k.hex()), Some(k));
        assert_eq!(((k.hi() as u128) << 64) | k.lo() as u128, {
            u128::from_str_radix(&k.hex(), 16).unwrap()
        });
        assert_eq!(Key::parse_hex("zz"), None);
        assert_eq!(Key::parse_hex(&"f".repeat(31)), None);
        assert_eq!(Key::parse_hex(&"g".repeat(32)), None);
    }

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("16k"), Some(16 << 10));
        assert_eq!(parse_bytes(" 2M "), Some(2 << 20));
        assert_eq!(parse_bytes("1g"), Some(1 << 30));
        assert_eq!(parse_bytes("nope"), None);
    }

    #[test]
    fn store_lookup_purge_roundtrip() {
        let dir = scratch("roundtrip");
        let store = TieredCache::with_config(dir.clone(), 1 << 20, 0, false);
        let key = key_of(&["roundtrip"]);
        assert_eq!(store.lookup(&key), None);
        store.store(&key, "blob=1\n").unwrap();
        assert_eq!(store.lookup(&key).as_deref(), Some("blob=1\n"));
        assert!(store.contains(&key));
        let s = store.stats();
        assert_eq!((s.hits(), s.misses()), (1, 1));
        assert_eq!(s.hot.hits, 1, "second lookup must be served hot");
        assert_eq!(store.purge().unwrap(), 1);
        assert_eq!(store.lookup(&key), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_tier_serves_without_disk() {
        let dir = scratch("hot-no-disk");
        let store = TieredCache::with_config(dir.clone(), 1 << 20, 0, false);
        let key = key_of(&["hot"]);
        store.store(&key, "v=1\n").unwrap();
        // Delete the cold file out from under the store: a hot-tier hit
        // must not notice.
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(store.lookup(&key).as_deref(), Some("v=1\n"));
        assert!(store.contains(&key), "contains answers from the hot tier");
        let s = store.stats();
        assert_eq!((s.hot.hits, s.cold.hits), (1, 0));
    }

    #[test]
    fn hot_tier_lru_eviction_is_deterministic() {
        let dir = scratch("hot-lru");
        // Budget fits two ~(8 + 64)-byte entries, not three.
        let store = TieredCache::with_config(dir.clone(), 150, 0, false);
        let (a, b, c) = (key_of(&["a"]), key_of(&["b"]), key_of(&["c"]));
        store.store(&a, "aaaaaaaa").unwrap();
        store.store(&b, "bbbbbbbb").unwrap();
        let _ = store.lookup(&a); // b is now least recent
        store.store(&c, "cccccccc").unwrap(); // evicts b
        let s = store.stats();
        assert_eq!(s.hot.evictions, 1);
        assert_eq!(s.hot.entries, 2);
        // b is gone hot but still on disk; a and c are hot.
        let hot: Vec<Key> = store.hottest(8).into_iter().map(|(k, _)| k).collect();
        assert!(hot.contains(&a) && hot.contains(&c) && !hot.contains(&b));
        assert_eq!(store.lookup(&b).as_deref(), Some("bbbbbbbb"));
        assert_eq!(store.stats().cold.hits, 1, "evicted key falls to disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_tier_budget_evicts_lru_files() {
        let dir = scratch("cold-evict");
        // No hot tier; cold budget fits ~3 of the 40-byte records.
        let store = TieredCache::with_config(dir.clone(), 0, 128, false);
        let keys: Vec<Key> = (0..6).map(|i| key_of(&["k", &i.to_string()])).collect();
        for k in &keys {
            store.store(k, &"x".repeat(40)).unwrap();
        }
        let s = store.stats();
        assert!(s.cold.evictions >= 3, "tiny budget must evict: {s:?}");
        assert!(s.cold.bytes <= 128, "occupancy within budget: {s:?}");
        // The most recent key always survives.
        assert!(store.contains(&keys[5]));
        // Evicted keys read as misses and can be re-stored.
        assert_eq!(store.lookup(&keys[0]), None);
        store.store(&keys[0], &"y".repeat(40)).unwrap();
        assert_eq!(store.lookup(&keys[0]).as_deref(), Some(&*"y".repeat(40)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_lookup_bumps_stamp_against_eviction() {
        let dir = scratch("cold-touch");
        let store = TieredCache::with_config(dir.clone(), 0, 100, false);
        let (a, b, c) = (key_of(&["a"]), key_of(&["b"]), key_of(&["c"]));
        store.store(&a, &"x".repeat(40)).unwrap();
        store.store(&b, &"x".repeat(40)).unwrap();
        let _ = store.lookup(&a); // a is now more recent than b
        store.store(&c, &"x".repeat(40)).unwrap(); // must evict b, not a
        assert!(store.contains(&a) && store.contains(&c) && !store.contains(&b));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compressed_records_roundtrip_and_mix_with_plain() {
        let dir = scratch("compress");
        let plain = TieredCache::with_config(dir.clone(), 0, 0, false);
        let packed = TieredCache::with_config(dir.clone(), 0, 0, true);
        let mut rec = String::from("schema=nsc-run-v1\n");
        for i in 0..64u64 {
            rec.push_str(&format!("stats.row{i}=4607182418800017408,{i},42\n"));
        }
        let old = key_of(&["old"]);
        let new = key_of(&["new"]);
        plain.store(&old, &rec).unwrap(); // legacy uncompressed entry
        packed.store(&new, &rec).unwrap();
        // Compressed file is smaller on disk but reads back identically,
        // through either store configuration.
        let old_sz = std::fs::metadata(plain.disk.entry_path(&old)).unwrap().len();
        let new_sz = std::fs::metadata(packed.disk.entry_path(&new)).unwrap().len();
        assert!(new_sz < old_sz, "compression must shrink records ({old_sz} -> {new_sz})");
        assert_eq!(packed.lookup(&old).as_deref(), Some(rec.as_str()));
        assert_eq!(plain.lookup(&new).as_deref(), Some(rec.as_str()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_compressed_entry_is_a_miss() {
        let dir = scratch("corrupt");
        let store = TieredCache::with_config(dir.clone(), 0, 0, true);
        let key = key_of(&["corrupt"]);
        let path = store.disk.entry_path(&key);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let mut junk = PACK_MAGIC.to_vec();
        junk.extend_from_slice(&99u64.to_le_bytes());
        junk.extend_from_slice(&[0x80, 9, 9]); // bogus match token
        std::fs::write(&path, junk).unwrap();
        assert_eq!(store.lookup(&key), None);
        assert_eq!(store.stats().cold.misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_and_hottest_report_residency() {
        let dir = scratch("probe");
        let store = TieredCache::with_config(dir.clone(), 1 << 20, 0, false);
        let key = key_of(&["probe"]);
        assert_eq!(store.probe(&key), KeyProbe::default());
        store.store(&key, "v=1\n").unwrap();
        let _ = store.lookup(&key);
        let _ = store.lookup(&key);
        let p = store.probe(&key);
        assert!(p.in_hot && p.in_cold);
        assert_eq!(p.hits, 2);
        assert!(p.bytes > 0);
        let hottest = store.hottest(1);
        assert_eq!(hottest, vec![(key, 2)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_reset_keeps_occupancy() {
        let dir = scratch("reset");
        let store = TieredCache::with_config(dir.clone(), 1 << 20, 0, false);
        let key = key_of(&["reset"]);
        store.store(&key, "v=1\n").unwrap();
        let _ = store.lookup(&key);
        store.reset_stats();
        let s = store.stats();
        assert_eq!((s.hits(), s.misses(), s.hot.stores, s.cold.stores), (0, 0, 0, 0));
        assert_eq!(s.hot.entries, 1, "reset must not drop residents");
        assert_eq!(s.cold.entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_rebuild_sees_preexisting_entries() {
        let dir = scratch("rebuild");
        let a = TieredCache::with_config(dir.clone(), 0, 0, false);
        for i in 0..4u64 {
            a.store(&key_of(&["pre", &i.to_string()]), &"z".repeat(32)).unwrap();
        }
        // A fresh store over the same directory (new daemon process)
        // must count the existing footprint and evict it under budget.
        let b = TieredCache::with_config(dir.clone(), 0, 120, false);
        let s0 = b.stats();
        assert_eq!(s0.cold.entries, 4);
        b.store(&key_of(&["post"]), &"z".repeat(32)).unwrap();
        let s1 = b.stats();
        assert!(s1.cold.evictions >= 1, "pre-existing entries evict: {s1:?}");
        assert!(s1.cold.bytes <= 120);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disable_override_wins() {
        set_disabled(true);
        assert!(!enabled());
        set_disabled(false);
    }
}
