//! Content-addressed on-disk result cache.
//!
//! Simulation points are pure functions of their canonical run request
//! (program, parameters, configuration, execution mode, fault plan), so
//! their results are addressable artifacts: the higher layers digest the
//! request into a [`Key`] and this module stores/retrieves the encoded
//! result under `results/.cache/<shard>/<key>.run`. A warm cache turns a
//! multi-minute sweep re-run into a directory scan.
//!
//! This module is deliberately value-agnostic: it maps keys to UTF-8
//! blobs. What goes into the digest and how results are encoded lives
//! with the types being cached (`near_stream::RunRequest`), keeping the
//! dependency direction sim → core intact.
//!
//! Arming: the cache is consulted only when the `NSC_CACHE` environment
//! variable is set to a non-empty value other than `0` *and* no runtime
//! override disabled it ([`set_disabled`], used by the `--no-cache`
//! flag). `NSC_RESULTS_DIR` relocates the `results/` root, and
//! `NSC_CACHE_DIR` overrides the cache directory outright.
//!
//! Hits and misses are counted process-wide (sweep workers on any thread
//! share the counters); harness reports surface them in the `host`
//! block, next to `jobs` and `wall_ms`, because they legitimately differ
//! between a cold and a warm run of otherwise identical work.
//!
//! # Examples
//!
//! ```
//! use nsc_sim::cache::{Digest, Key};
//!
//! let mut d = Digest::new("example-schema-v1");
//! d.str("histogram");
//! d.u64(42);
//! let key: Key = d.finish();
//! let mut d2 = Digest::new("example-schema-v1");
//! d2.str("histogram");
//! d2.u64(43); // one-field perturbation
//! assert_ne!(key, d2.finish());
//! ```

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// A 128-bit content digest, rendered as 32 hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Key {
    hi: u64,
    lo: u64,
}

impl Key {
    /// The 32-hex-digit rendering used as the on-disk file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// The high 64 bits (used to tag trace events compactly).
    pub fn hi(&self) -> u64 {
        self.hi
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.hex())
    }
}

/// An incremental 128-bit digest over the canonical byte encoding of a
/// run request.
///
/// Two independent FNV-1a-style lanes (distinct offset bases and primes)
/// are mixed through a splitmix64 finalizer. This is not cryptographic —
/// the threat model is accidental collision between the few thousand
/// distinct simulation points of an evaluation campaign, for which
/// 128 bits of well-mixed state is comfortable.
#[derive(Clone, Debug)]
pub struct Digest {
    a: u64,
    b: u64,
    len: u64,
}

impl Digest {
    /// Starts a digest, folding in `schema` first so any schema/version
    /// bump invalidates every previously stored entry.
    pub fn new(schema: &str) -> Digest {
        let mut d = Digest {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
            len: 0,
        };
        d.str(schema);
        d
    }

    /// Folds raw bytes into the digest.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
            self.b = (self.b ^ byte as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (self.b >> 29);
        }
        self.len = self.len.wrapping_add(bytes.len() as u64);
    }

    /// Folds a length-prefixed string (prefixing prevents `"ab" + "c"`
    /// from colliding with `"a" + "bc"` across field boundaries).
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// Folds one little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` by bit pattern (distinguishes `0.0` from `-0.0`;
    /// NaN payloads fold as-is, which is fine for configuration data).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Finalizes into a [`Key`].
    pub fn finish(&self) -> Key {
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        Key {
            hi: mix(self.a ^ mix(self.len)),
            lo: mix(self.b.wrapping_add(mix(self.a.rotate_left(32)))),
        }
    }
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static DISABLED: AtomicBool = AtomicBool::new(false);

fn env_armed() -> bool {
    static ARMED: OnceLock<bool> = OnceLock::new();
    *ARMED.get_or_init(|| {
        matches!(std::env::var("NSC_CACHE"), Ok(v) if !v.is_empty() && v != "0")
    })
}

/// Whether cache consultation is armed (`NSC_CACHE=1` and not overridden
/// by [`set_disabled`]).
pub fn enabled() -> bool {
    env_armed() && !DISABLED.load(Ordering::Relaxed)
}

/// Runtime override: `set_disabled(true)` forces the cache off even when
/// `NSC_CACHE` is set (the `--no-cache` harness flag).
pub fn set_disabled(disabled: bool) {
    DISABLED.store(disabled, Ordering::Relaxed);
}

/// Process-wide `(hits, misses)` counters.
pub fn counters() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Resets the hit/miss counters (the daemon's per-window accounting).
pub fn reset_counters() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// The cache root: `NSC_CACHE_DIR`, else `<results dir>/.cache` where the
/// results dir honors `NSC_RESULTS_DIR` exactly like the bench reports.
pub fn dir() -> PathBuf {
    if let Some(d) = std::env::var_os("NSC_CACHE_DIR") {
        return PathBuf::from(d);
    }
    std::env::var_os("NSC_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
        .join(".cache")
}

fn entry_path(key: &Key) -> PathBuf {
    let hex = key.hex();
    // 256-way sharding on the first byte keeps directories small even
    // for campaigns with tens of thousands of points.
    dir().join(&hex[..2]).join(format!("{hex}.run"))
}

/// Looks `key` up, counting a hit or miss. Returns the stored blob.
///
/// Unreadable or missing entries are misses; a corrupt entry is the
/// caller's to detect when decoding (and to overwrite via [`store`]).
pub fn lookup(key: &Key) -> Option<String> {
    match std::fs::read_to_string(entry_path(key)) {
        Ok(blob) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            crate::metrics::count(crate::metrics::Metric::ResultCacheHits);
            Some(blob)
        }
        Err(_) => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            crate::metrics::count(crate::metrics::Metric::ResultCacheMisses);
            None
        }
    }
}

/// Peeks at `key` without touching the hit/miss counters (daemon status).
pub fn contains(key: &Key) -> bool {
    entry_path(key).exists()
}

/// Stores `blob` under `key`, atomically: the write lands in a unique
/// temp file first and is renamed into place, so concurrent sweep
/// workers computing the same point never observe a torn entry.
pub fn store(key: &Key, blob: &str) -> io::Result<()> {
    let path = entry_path(key);
    let shard = path.parent().expect("entry path has a shard directory");
    std::fs::create_dir_all(shard)?;
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = shard.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, blob)?;
    match std::fs::rename(&tmp, &path) {
        Ok(()) => {
            crate::metrics::count(crate::metrics::Metric::ResultCacheStores);
            Ok(())
        }
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Deletes every cached entry, returning how many were removed. Used by
/// `nsc-client flush --purge` and tests; a missing cache directory is
/// simply empty.
pub fn purge() -> io::Result<usize> {
    let root = dir();
    let mut removed = 0;
    let shards = match std::fs::read_dir(&root) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    for shard in shards {
        let shard = shard?.path();
        if !shard.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&shard)? {
            let p = entry?.path();
            if p.extension().is_some_and(|e| e == "run") {
                std::fs::remove_file(&p)?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(parts: &[&str]) -> Key {
        let mut d = Digest::new("test-v1");
        for p in parts {
            d.str(p);
        }
        d.finish()
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        assert_eq!(key_of(&["a", "b"]), key_of(&["a", "b"]));
        assert_ne!(key_of(&["a", "b"]), key_of(&["a", "c"]));
        // Length prefixing: shifting bytes across a field boundary must
        // change the key.
        assert_ne!(key_of(&["ab", "c"]), key_of(&["a", "bc"]));
        assert_ne!(key_of(&[""]), key_of(&[]));
    }

    #[test]
    fn digest_schema_bump_invalidates() {
        let mut v1 = Digest::new("v1");
        v1.u64(7);
        let mut v2 = Digest::new("v2");
        v2.u64(7);
        assert_ne!(v1.finish(), v2.finish());
    }

    #[test]
    fn digest_f64_bit_pattern() {
        let mut a = Digest::new("v");
        a.f64(0.0);
        let mut b = Digest::new("v");
        b.f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn key_hex_is_32_digits() {
        let k = key_of(&["x"]);
        assert_eq!(k.hex().len(), 32);
        assert_eq!(k.to_string(), k.hex());
    }

    #[test]
    fn store_lookup_purge_roundtrip() {
        let tmp = std::env::temp_dir().join(format!("nsc-cache-test-{}", std::process::id()));
        // Route the cache through the temp dir without touching the
        // global environment (racy under the threaded test harness):
        // exercise the path helpers directly.
        let key = key_of(&["roundtrip"]);
        let hex = key.hex();
        let shard = tmp.join(&hex[..2]);
        std::fs::create_dir_all(&shard).unwrap();
        let path = shard.join(format!("{hex}.run"));
        std::fs::write(&path, "blob=1\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "blob=1\n");
        std::fs::remove_dir_all(&tmp).unwrap();
    }

    #[test]
    fn counters_accumulate() {
        let (h0, m0) = counters();
        // A lookup against a key that cannot exist counts a miss.
        let _ = lookup(&key_of(&["definitely-not-stored", "counters_accumulate"]));
        let (h1, m1) = counters();
        assert!(m1 > m0);
        assert!(h1 >= h0);
    }

    #[test]
    fn disable_override_wins() {
        set_disabled(true);
        assert!(!enabled());
        set_disabled(false);
    }
}
