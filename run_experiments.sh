#!/usr/bin/env bash
# Regenerates every figure/table of the paper's evaluation at --small scale
# (~1/16 of Table VI inputs with proportionally scaled caches) and captures
# the outputs under results/. Pass --tiny or --full to change scale.
#
# Each harness writes two artifacts: the human-readable table it prints
# (captured as results/<name>.txt) and a machine-readable summary it
# emits itself (results/<name>.json, schema "nsc-bench-v1" -- see the
# Observability section in DESIGN.md). Set NSC_TRACE=1 to additionally
# collect a Chrome/Perfetto trace per harness (results/<name>.trace.json).
#
# Harnesses fan their runs across NSC_JOBS workers (default: all cores)
# with bit-identical output for any job count. Wall-clock per harness and
# in total lands in results/wall_clock.json.
#
# Warm-cache reruns: with NSC_CACHE=1 every simulation point is stored
# content-addressed under results/.cache/, and a repeated sweep replays
# byte-identical results without simulating. Regenerating the whole
# evaluation after an interrupted or partial run then only simulates
# what is missing:
#
#   NSC_CACHE=1 ./run_experiments.sh --small   # cold: simulates + stores
#   NSC_CACHE=1 ./run_experiments.sh --small   # warm: replays from cache
#
# (check results/<name>.json host.cache_hits / host.cache_misses).
set -u
SCALE="${1:---small}"
cd "$(dirname "$0")"
mkdir -p results
cargo build --release -p nsc-bench -p nsc-serve 2>/dev/null
BIN=target/release
total_start=$SECONDS
WALL_ENTRIES=""
for h in tab01_capabilities tab02_patterns tab03_stream_isas tab04_encoding \
         area_model fig01_potential fig09_speedup fig10_energy fig11_generality \
         fig12_traffic fig13_scm_latency fig14_scc_rob fig15_affine_ranges \
         fig16_lock_type fig17_scalar_pe fig_fault_sweep overview; do
  echo "=== $h $SCALE ==="
  start=$SECONDS
  if $BIN/$h "$SCALE" > results/$h.txt 2>&1; then
    elapsed=$((SECONDS - start))
    echo "($h: ${elapsed}s)" > results/$h.time
    WALL_ENTRIES="$WALL_ENTRIES\"$h\":$elapsed,"
  else
    echo "$h FAILED"
    WALL_ENTRIES="$WALL_ENTRIES\"$h\":null,"
  fi
done
# Perf baseline for this scale: wall time + pinned sim counters per
# workload, comparable across checkouts with `nsc_perf --compare`.
echo "=== nsc_perf $SCALE ==="
NSC_RESULTS_DIR=results $BIN/nsc_perf "$SCALE" --label "${SCALE#--}" \
  || echo "nsc_perf FAILED"
# Serving telemetry snapshot: a short-lived daemon under a small burst,
# captured as the health verdict + self-contained dashboard HTML.
echo "=== serving telemetry $SCALE ==="
TL_SOCK="$(mktemp -u /tmp/nscd-exp-XXXXXX.sock)"
NSC_SAMPLE_MS=200 NSC_CACHE_DIR=results/.cache \
  $BIN/nscd --socket "$TL_SOCK" --jobs 2 2>/dev/null &
TL_PID=$!
for _ in $(seq 50); do [ -S "$TL_SOCK" ] && break; sleep 0.1; done
if [ -S "$TL_SOCK" ]; then
  $BIN/nsc_load --tiny --socket "$TL_SOCK" --secs 2 --rate 100 --conns 2 \
    > results/serving_load.txt 2>&1 || echo "nsc_load FAILED"
  sleep 0.5
  $BIN/nsc-client health --socket "$TL_SOCK" \
    > results/serving_health.json 2> results/serving_health.txt \
    || echo "health FAILED"
  $BIN/nsc-client dashboard --socket "$TL_SOCK" --out results/serving_dashboard.html \
    2>/dev/null || echo "dashboard FAILED"
  $BIN/nsc-client shutdown --socket "$TL_SOCK" > /dev/null 2>&1
  wait "$TL_PID" 2>/dev/null
else
  echo "serving telemetry SKIPPED (daemon never bound its socket)"
  kill "$TL_PID" 2>/dev/null
fi
total=$((SECONDS - total_start))
printf '{"scale":"%s","jobs":"%s","harness_s":{%s},"total_s":%d}\n' \
  "$SCALE" "${NSC_JOBS:-auto}" "${WALL_ENTRIES%,}" "$total" > results/wall_clock.json
echo "collected $(ls results/*.json 2>/dev/null | wc -l) machine-readable summaries in results/*.json"
echo "total wall-clock: ${total}s (results/wall_clock.json)"
echo done
